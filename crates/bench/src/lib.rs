//! Shared harness for regenerating every table and figure of the PHOENIX
//! paper's evaluation.
//!
//! Each experiment is a binary (`table1`, `table2_fig5`, `fig6`, `table3`,
//! `table4_fig7`, `fig8`) printing the paper's rows/series to stdout and
//! writing machine-readable JSON into `results/`. See `EXPERIMENTS.md` at
//! the workspace root for the paper-vs-measured record.

use phoenix_circuit::Circuit;
use serde::Serialize;
use std::path::Path;

/// Default deterministic seed shared by every experiment binary.
pub const SEED: u64 = 7;

/// Circuit metrics in the paper's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Metrics {
    /// Total gate count (1Q included — Table I's `#Gate`).
    pub gates: usize,
    /// CNOT count.
    pub cnot: usize,
    /// SU(4) block count.
    pub su4: usize,
    /// Full depth.
    pub depth: usize,
    /// 2Q-only depth.
    pub depth_2q: usize,
}

impl Metrics {
    /// Extracts metrics from a circuit.
    pub fn of(c: &Circuit) -> Metrics {
        let k = c.counts();
        Metrics {
            gates: k.total,
            cnot: k.cnot,
            su4: k.su4,
            depth: c.depth(),
            depth_2q: c.depth_2q(),
        }
    }
}

/// Geometric mean of strictly positive values (the paper's averaging rule).
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive entries.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Writes a JSON result file under `results/`, creating the directory.
///
/// # Panics
///
/// Panics on I/O errors (experiment binaries want loud failures).
pub fn write_results(name: &str, value: &impl Serialize) {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, json).expect("write results file");
    eprintln!("[results] wrote {}", path.display());
}

/// Renders one markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::Gate;

    #[test]
    fn metrics_extracts_counts() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        let m = Metrics::of(&c);
        assert_eq!(m.gates, 2);
        assert_eq!(m.cnot, 1);
        assert_eq!(m.depth_2q, 1);
        assert_eq!(m.depth, 2);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixes_multiplicatively() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[0.0, 1.0]);
    }

    #[test]
    fn row_renders_markdown() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
