//! Shared harness for regenerating every table and figure of the PHOENIX
//! paper's evaluation.
//!
//! Each experiment is a binary (`table1`, `table2_fig5`, `fig6`, `table3`,
//! `table4_fig7`, `fig8`) printing the paper's rows/series to stdout and
//! writing machine-readable JSON into `results/`. See `EXPERIMENTS.md` at
//! the workspace root for the paper-vs-measured record.

use phoenix_circuit::Circuit;
use phoenix_core::phoenix_obs::{perfetto, ObsReport};
use phoenix_core::{CompileRequest, Device, PassTrace, PhoenixCompiler, Target};
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;
use serde::Serialize;
use std::path::Path;

/// Default deterministic seed shared by every experiment binary.
pub const SEED: u64 = 7;

/// True when pass-trace emission was requested, either with `--trace` on
/// the command line or via the `PHOENIX_TRACE` environment variable.
pub fn trace_enabled() -> bool {
    std::env::args().any(|a| a == "--trace")
        || std::env::var("PHOENIX_TRACE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// True when observability instrumentation was requested, either with
/// `--obs` on the command line or via the `PHOENIX_OBS` environment
/// variable. Every experiment binary honors this; the collected reports
/// land in `results/<bin>_perfetto.json` (Chrome/Perfetto loadable),
/// `results/<bin>_obs.json` (machine-readable), and
/// `results/<bin>_report.txt` (human-readable).
pub fn obs_enabled() -> bool {
    std::env::args().any(|a| a == "--obs")
        || std::env::var("PHOENIX_OBS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// True when pass-boundary translation validation was requested, either
/// with `--verify` on the command line or via the `PHOENIX_VERIFY`
/// environment variable. Every experiment binary honors this; a
/// miscompiled pass then aborts the run with the offending pass named.
pub fn verify_enabled() -> bool {
    std::env::args().any(|a| a == "--verify")
        || std::env::var("PHOENIX_VERIFY").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The PHOENIX compiler every experiment binary should use: default
/// options, with pass-boundary verification attached when requested via
/// [`verify_enabled`].
pub fn phoenix_compiler() -> PhoenixCompiler {
    PhoenixCompiler::new(phoenix_core::PhoenixOptions {
        verify: verify_enabled(),
        ..phoenix_core::PhoenixOptions::default()
    })
}

/// The paper's short column label for a strategy name
/// (`"TKET-style"` → `"TKET"`).
pub fn short_label(name: &str) -> &str {
    name.strip_suffix("-style").unwrap_or(name)
}

/// Collects per-benchmark observability artifacts — [`PassTrace`]s when
/// `--trace`/`PHOENIX_TRACE` is set, [`ObsReport`]s when
/// `--obs`/`PHOENIX_OBS` is set — and writes them under `results/` on
/// [`Tracer::finish`]. With neither flag set every recording method is a
/// no-op, so default experiment output is unchanged.
///
/// Compilations are replayed through the unified [`CompileRequest`] API,
/// so both artifacts come from the same instrumented run.
#[derive(Debug)]
pub struct Tracer {
    experiment: &'static str,
    trace: bool,
    obs: bool,
    traces: Vec<(String, PassTrace)>,
    reports: Vec<(String, ObsReport)>,
}

impl Tracer {
    /// A tracer for `experiment`, enabled per [`trace_enabled`] /
    /// [`obs_enabled`].
    pub fn from_env(experiment: &'static str) -> Self {
        Tracer {
            experiment,
            trace: trace_enabled(),
            obs: obs_enabled(),
            traces: Vec::new(),
            reports: Vec::new(),
        }
    }

    /// Whether any artifact (trace or obs report) is being collected.
    pub fn enabled(&self) -> bool {
        self.trace || self.obs
    }

    /// Records an already-obtained trace under `label`.
    pub fn add(&mut self, label: impl Into<String>, trace: PassTrace) {
        if self.trace {
            self.traces.push((label.into(), trace));
        }
    }

    /// Runs `request` with the tracer's retention flags and files whatever
    /// artifacts come back (no-op when disabled; exits nonzero on compile
    /// errors).
    pub fn record(&mut self, label: &str, request: CompileRequest) {
        if !self.enabled() {
            return;
        }
        let outcome = or_exit(request.trace(self.trace).obs(self.obs).run(), label);
        if let Some(trace) = outcome.trace {
            self.traces.push((label.to_string(), trace));
        }
        if let Some(report) = outcome.obs {
            self.reports.push((label.to_string(), report));
        }
    }

    /// Records an instrumented logical (CNOT-target) PHOENIX compilation
    /// of `terms` (no-op when disabled; exits nonzero on compile errors).
    pub fn record_logical(
        &mut self,
        label: &str,
        compiler: &PhoenixCompiler,
        n: usize,
        terms: &[(PauliString, f64)],
    ) {
        self.record(label, compiler.request(n, terms).target(Target::Cnot));
    }

    /// Records an instrumented hardware-aware PHOENIX compilation of
    /// `terms` on a bare coupling graph.
    ///
    /// **Deprecated**: prefer [`Tracer::record_device`] with a
    /// [`Device`] (e.g. from `DeviceRegistry`) — this wrapper forwards to
    /// it via `Device::bare` and exists only for pre-device callers.
    pub fn record_hardware(
        &mut self,
        label: &str,
        compiler: &PhoenixCompiler,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) {
        self.record_device(label, compiler, n, terms, &Device::bare(device.clone()));
    }

    /// Records an instrumented device-targeted PHOENIX compilation of
    /// `terms` on `device` — coupling graph, native ISA, and noise profile
    /// included (no-op when disabled; exits nonzero on compile errors).
    pub fn record_device(
        &mut self,
        label: &str,
        compiler: &PhoenixCompiler,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &Device,
    ) {
        self.record(
            label,
            compiler
                .request(n, terms)
                .target(Target::Device(device.clone())),
        );
    }

    /// Writes the collected artifacts (no-op for whichever side is
    /// disabled or empty): `results/<bin>_trace.json`, and under `--obs`
    /// additionally `results/<bin>_perfetto.json`,
    /// `results/<bin>_obs.json`, and `results/<bin>_report.txt`.
    pub fn finish(self) {
        if !self.traces.is_empty() {
            write_results(&format!("{}_trace", self.experiment), &self.traces);
        }
        if !self.reports.is_empty() {
            write_results(&format!("{}_obs", self.experiment), &self.reports);
            let file = perfetto::to_trace_file_batch(&self.reports);
            let json = or_exit(perfetto::to_json(&file), "serializing perfetto trace");
            write_text(&format!("{}_perfetto.json", self.experiment), &json);
            let mut text = String::new();
            for (label, report) in &self.reports {
                text.push_str(&format!("=== {label} ===\n{}\n", report.render()));
            }
            write_text(&format!("{}_report.txt", self.experiment), &text);
        }
    }
}

/// Circuit metrics in the paper's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Metrics {
    /// Total gate count (1Q included — Table I's `#Gate`).
    pub gates: usize,
    /// CNOT count.
    pub cnot: usize,
    /// SU(4) block count.
    pub su4: usize,
    /// Full depth.
    pub depth: usize,
    /// 2Q-only depth.
    pub depth_2q: usize,
}

impl Metrics {
    /// Extracts metrics from a circuit.
    pub fn of(c: &Circuit) -> Metrics {
        let k = c.counts();
        Metrics {
            gates: k.total,
            cnot: k.cnot,
            su4: k.su4,
            depth: c.depth(),
            depth_2q: c.depth_2q(),
        }
    }
}

/// Geometric mean of strictly positive values (the paper's averaging rule).
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive entries.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Unwraps an experiment step, printing the diagnostic to stderr and
/// exiting with status 1 on failure — a failing experiment binary should
/// report what went wrong, not dump a panic backtrace.
pub fn or_exit<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {what}: {e}");
        std::process::exit(1);
    })
}

/// Writes a JSON result file under `results/`, creating the directory.
/// Prints a diagnostic to stderr and exits nonzero on I/O errors.
pub fn write_results(name: &str, value: &impl Serialize) {
    let dir = Path::new("results");
    or_exit(
        std::fs::create_dir_all(dir),
        &format!("creating {}", dir.display()),
    );
    let path = dir.join(format!("{name}.json"));
    let json = or_exit(
        serde_json::to_string_pretty(value),
        &format!("serializing {name} results"),
    );
    or_exit(
        std::fs::write(&path, json),
        &format!("writing {}", path.display()),
    );
    eprintln!("[results] wrote {}", path.display());
}

/// Writes a verbatim text file under `results/` (`name` includes the
/// extension), creating the directory. Prints a diagnostic to stderr and
/// exits nonzero on I/O errors.
pub fn write_text(name: &str, text: &str) {
    let dir = Path::new("results");
    or_exit(
        std::fs::create_dir_all(dir),
        &format!("creating {}", dir.display()),
    );
    let path = dir.join(name);
    or_exit(
        std::fs::write(&path, text),
        &format!("writing {}", path.display()),
    );
    eprintln!("[results] wrote {}", path.display());
}

/// Renders one markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::Gate;

    #[test]
    fn metrics_extracts_counts() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        let m = Metrics::of(&c);
        assert_eq!(m.gates, 2);
        assert_eq!(m.cnot, 1);
        assert_eq!(m.depth_2q, 1);
        assert_eq!(m.depth, 2);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixes_multiplicatively() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[0.0, 1.0]);
    }

    #[test]
    fn row_renders_markdown() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }

    #[test]
    fn short_label_strips_the_style_suffix() {
        assert_eq!(short_label("TKET-style"), "TKET");
        assert_eq!(short_label("Paulihedral-style"), "Paulihedral");
        assert_eq!(short_label("PHOENIX"), "PHOENIX");
        assert_eq!(short_label("original"), "original");
    }

    fn tracer(trace: bool, obs: bool) -> Tracer {
        Tracer {
            experiment: "test",
            trace,
            obs,
            traces: Vec::new(),
            reports: Vec::new(),
        }
    }

    #[test]
    fn disabled_tracer_collects_nothing() {
        let mut t = tracer(false, false);
        t.record_logical("x", &phoenix_compiler(), 2, &[("ZZ".parse().unwrap(), 0.1)]);
        assert!(t.traces.is_empty());
        assert!(t.reports.is_empty());
        t.finish();
    }

    #[test]
    fn enabled_tracer_records_traces() {
        let mut t = tracer(true, false);
        t.record_logical("x", &phoenix_compiler(), 2, &[("ZZ".parse().unwrap(), 0.1)]);
        assert_eq!(t.traces.len(), 1);
        assert!(!t.traces[0].1.passes.is_empty());
        assert!(t.reports.is_empty());
    }

    #[test]
    fn obs_tracer_records_reports() {
        let mut t = tracer(false, true);
        t.record_logical("x", &phoenix_compiler(), 2, &[("ZZ".parse().unwrap(), 0.1)]);
        assert!(t.traces.is_empty());
        assert_eq!(t.reports.len(), 1);
        assert_eq!(t.reports[0].1.root.name, "pipeline");
        assert!(t.reports[0].1.metrics.counter("passes_run").unwrap_or(0) > 0);
    }
}
