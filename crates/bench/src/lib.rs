//! Shared harness for regenerating every table and figure of the PHOENIX
//! paper's evaluation.
//!
//! Each experiment is a binary (`table1`, `table2_fig5`, `fig6`, `table3`,
//! `table4_fig7`, `fig8`) printing the paper's rows/series to stdout and
//! writing machine-readable JSON into `results/`. See `EXPERIMENTS.md` at
//! the workspace root for the paper-vs-measured record.

use phoenix_circuit::Circuit;
use phoenix_core::{PassTrace, PhoenixCompiler};
use phoenix_pauli::PauliString;
use phoenix_topology::CouplingGraph;
use serde::Serialize;
use std::path::Path;

/// Default deterministic seed shared by every experiment binary.
pub const SEED: u64 = 7;

/// True when pass-trace emission was requested, either with `--trace` on
/// the command line or via the `PHOENIX_TRACE` environment variable.
pub fn trace_enabled() -> bool {
    std::env::args().any(|a| a == "--trace")
        || std::env::var("PHOENIX_TRACE").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// True when pass-boundary translation validation was requested, either
/// with `--verify` on the command line or via the `PHOENIX_VERIFY`
/// environment variable. Every experiment binary honors this; a
/// miscompiled pass then aborts the run with the offending pass named.
pub fn verify_enabled() -> bool {
    std::env::args().any(|a| a == "--verify")
        || std::env::var("PHOENIX_VERIFY").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The PHOENIX compiler every experiment binary should use: default
/// options, with pass-boundary verification attached when requested via
/// [`verify_enabled`].
pub fn phoenix_compiler() -> PhoenixCompiler {
    PhoenixCompiler::new(phoenix_core::PhoenixOptions {
        verify: verify_enabled(),
        ..phoenix_core::PhoenixOptions::default()
    })
}

/// The paper's short column label for a strategy name
/// (`"TKET-style"` → `"TKET"`).
pub fn short_label(name: &str) -> &str {
    name.strip_suffix("-style").unwrap_or(name)
}

/// Collects per-benchmark [`PassTrace`]s and writes them to
/// `results/<experiment>_trace.json` — but only when tracing was requested
/// (see [`trace_enabled`]), so default experiment output is unchanged.
#[derive(Debug)]
pub struct Tracer {
    experiment: &'static str,
    enabled: bool,
    traces: Vec<(String, PassTrace)>,
}

impl Tracer {
    /// A tracer for `experiment`, enabled per [`trace_enabled`].
    pub fn from_env(experiment: &'static str) -> Self {
        Tracer {
            experiment,
            enabled: trace_enabled(),
            traces: Vec::new(),
        }
    }

    /// Whether traces are being collected.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records an already-obtained trace under `label`.
    pub fn add(&mut self, label: impl Into<String>, trace: PassTrace) {
        if self.enabled {
            self.traces.push((label.into(), trace));
        }
    }

    /// Records the trace of a logical PHOENIX compilation of `terms`
    /// (no-op when disabled; exits nonzero on compile errors).
    pub fn record_logical(
        &mut self,
        label: &str,
        compiler: &PhoenixCompiler,
        n: usize,
        terms: &[(PauliString, f64)],
    ) {
        if self.enabled {
            let (_, trace) = or_exit(compiler.try_compile_to_cnot_with_trace(n, terms), label);
            self.add(label, trace);
        }
    }

    /// Records the trace of a hardware-aware PHOENIX compilation of
    /// `terms` on `device` (no-op when disabled; exits nonzero on compile
    /// errors).
    pub fn record_hardware(
        &mut self,
        label: &str,
        compiler: &PhoenixCompiler,
        n: usize,
        terms: &[(PauliString, f64)],
        device: &CouplingGraph,
    ) {
        if self.enabled {
            let (_, trace) = or_exit(
                compiler.try_compile_hardware_aware_with_trace(n, terms, device),
                label,
            );
            self.add(label, trace);
        }
    }

    /// Writes the collected traces (no-op when disabled or empty).
    pub fn finish(self) {
        if self.enabled && !self.traces.is_empty() {
            write_results(&format!("{}_trace", self.experiment), &self.traces);
        }
    }
}

/// Circuit metrics in the paper's vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Metrics {
    /// Total gate count (1Q included — Table I's `#Gate`).
    pub gates: usize,
    /// CNOT count.
    pub cnot: usize,
    /// SU(4) block count.
    pub su4: usize,
    /// Full depth.
    pub depth: usize,
    /// 2Q-only depth.
    pub depth_2q: usize,
}

impl Metrics {
    /// Extracts metrics from a circuit.
    pub fn of(c: &Circuit) -> Metrics {
        let k = c.counts();
        Metrics {
            gates: k.total,
            cnot: k.cnot,
            su4: k.su4,
            depth: c.depth(),
            depth_2q: c.depth_2q(),
        }
    }
}

/// Geometric mean of strictly positive values (the paper's averaging rule).
///
/// # Panics
///
/// Panics if `xs` is empty or contains non-positive entries.
pub fn geomean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geomean of empty slice");
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            assert!(x > 0.0, "geomean needs positive values, got {x}");
            x.ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Unwraps an experiment step, printing the diagnostic to stderr and
/// exiting with status 1 on failure — a failing experiment binary should
/// report what went wrong, not dump a panic backtrace.
pub fn or_exit<T, E: std::fmt::Display>(result: Result<T, E>, what: &str) -> T {
    result.unwrap_or_else(|e| {
        eprintln!("error: {what}: {e}");
        std::process::exit(1);
    })
}

/// Writes a JSON result file under `results/`, creating the directory.
/// Prints a diagnostic to stderr and exits nonzero on I/O errors.
pub fn write_results(name: &str, value: &impl Serialize) {
    let dir = Path::new("results");
    or_exit(
        std::fs::create_dir_all(dir),
        &format!("creating {}", dir.display()),
    );
    let path = dir.join(format!("{name}.json"));
    let json = or_exit(
        serde_json::to_string_pretty(value),
        &format!("serializing {name} results"),
    );
    or_exit(
        std::fs::write(&path, json),
        &format!("writing {}", path.display()),
    );
    eprintln!("[results] wrote {}", path.display());
}

/// Renders one markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::Gate;

    #[test]
    fn metrics_extracts_counts() {
        let mut c = Circuit::new(2);
        c.push(Gate::H(0));
        c.push(Gate::Cnot(0, 1));
        let m = Metrics::of(&c);
        assert_eq!(m.gates, 2);
        assert_eq!(m.cnot, 1);
        assert_eq!(m.depth_2q, 1);
        assert_eq!(m.depth, 2);
    }

    #[test]
    fn geomean_of_equal_values() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_mixes_multiplicatively() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[0.0, 1.0]);
    }

    #[test]
    fn row_renders_markdown() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }

    #[test]
    fn short_label_strips_the_style_suffix() {
        assert_eq!(short_label("TKET-style"), "TKET");
        assert_eq!(short_label("Paulihedral-style"), "Paulihedral");
        assert_eq!(short_label("PHOENIX"), "PHOENIX");
        assert_eq!(short_label("original"), "original");
    }

    #[test]
    fn disabled_tracer_collects_nothing() {
        let mut t = Tracer {
            experiment: "test",
            enabled: false,
            traces: Vec::new(),
        };
        t.record_logical("x", &phoenix_compiler(), 2, &[("ZZ".parse().unwrap(), 0.1)]);
        assert!(t.traces.is_empty());
        t.finish();
    }

    #[test]
    fn enabled_tracer_records_traces() {
        let mut t = Tracer {
            experiment: "test",
            enabled: true,
            traces: Vec::new(),
        };
        t.record_logical("x", &phoenix_compiler(), 2, &[("ZZ".parse().unwrap(), 0.1)]);
        assert_eq!(t.traces.len(), 1);
        assert!(!t.traces[0].1.passes.is_empty());
    }
}
