//! Compile-time and gate-count scaling (beyond the paper's tables): PHOENIX
//! across growing Heisenberg chains, Trotter repetitions, and QAOA sizes.
//!
//! Supports the paper's scalability claim ("compiles VQA programs of
//! thousands of Pauli strings … in dozens of seconds" — in Python; this
//! implementation is ~1000× faster).

use phoenix_bench::{or_exit, phoenix_compiler, row, write_results, Tracer, SEED};

use phoenix_hamil::{models, qaoa, uccsd, Hamiltonian, Molecule};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Point {
    program: String,
    qubits: usize,
    pauli: usize,
    cnot: usize,
    depth_2q: usize,
    millis: f64,
}

fn measure(h: &Hamiltonian, tracer: &mut Tracer) -> Point {
    // Timed without trace recording, so the reported numbers are clean;
    // the trace (when requested) comes from a separate run.
    let t0 = Instant::now();
    let c = or_exit(
        phoenix_compiler().try_compile_to_cnot(h.num_qubits(), h.terms()),
        h.name(),
    );
    let millis = t0.elapsed().as_secs_f64() * 1e3;
    tracer.record_logical(h.name(), &phoenix_compiler(), h.num_qubits(), h.terms());
    Point {
        program: h.name().to_string(),
        qubits: h.num_qubits(),
        pauli: h.len(),
        cnot: c.counts().cnot,
        depth_2q: c.depth_2q(),
        millis,
    }
}

fn main() {
    let mut points = Vec::new();
    let mut tracer = Tracer::from_env("scaling");
    // Heisenberg chains of growing width.
    for n in [8usize, 16, 32, 64, 96] {
        points.push(measure(
            &models::heisenberg_chain(n, 1.0, 0.8, 0.6),
            &mut tracer,
        ));
    }
    // Trotter-repeated molecular ansatz: term count grows linearly.
    let base = uccsd::ansatz(Molecule::nh(), true, uccsd::Encoding::JordanWigner, SEED);
    for r in [1usize, 2, 4, 8] {
        points.push(measure(&base.repeated(r), &mut tracer));
    }
    // QAOA width sweep.
    for n in [16usize, 32, 64, 96] {
        let edges = qaoa::random_regular_graph(n, 4, SEED + n as u64);
        points.push(measure(
            &qaoa::maxcut_program(format!("Rand4-{n}"), n, &edges, SEED),
            &mut tracer,
        ));
    }

    println!("# Scaling study (PHOENIX, logical CNOT ISA)\n");
    println!(
        "{}",
        row(&[
            "Program",
            "#Qubit",
            "#Pauli",
            "#CNOT",
            "Depth-2Q",
            "time (ms)"
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 6]));
    for p in &points {
        println!(
            "{}",
            row(&[
                p.program.clone(),
                p.qubits.to_string(),
                p.pauli.to_string(),
                p.cnot.to_string(),
                p.depth_2q.to_string(),
                format!("{:.1}", p.millis),
            ])
        );
    }
    write_results("scaling", &points);
    tracer.finish();
}
