//! Table IV + Fig. 7 — QAOA benchmarking versus 2QAN (heavy-hex).
//!
//! Six QAOA programs (random 4-regular and 3-regular graphs, 16/20/24
//! qubits): mapped `#CNOT`, `Depth-2Q`, `#SWAP` and routing overhead for
//! the 2QAN-style baseline and PHOENIX. Logical-level 2Q depth is also
//! reported (both schedulers reach near-optimal depth there, as the paper
//! notes).

use phoenix_baselines::Baseline;
use phoenix_bench::{phoenix_compiler, row, write_results, Metrics, Tracer, SEED};
use phoenix_core::{CompilerStrategy, HardwareProgram};
use phoenix_hamil::qaoa;
use phoenix_topology::CouplingGraph;
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    benchmark: String,
    pauli: usize,
    qan: Side,
    phoenix: Side,
}

#[derive(Serialize)]
struct Side {
    logical_depth_2q: usize,
    mapped: Metrics,
    swaps: usize,
    overhead: f64,
}

fn side(hw: &HardwareProgram) -> Side {
    Side {
        logical_depth_2q: hw.logical.depth_2q(),
        mapped: Metrics::of(&hw.circuit),
        swaps: hw.num_swaps,
        overhead: hw.routing_overhead(),
    }
}

fn main() {
    let device = CouplingGraph::manhattan65();
    let mut entries = Vec::new();
    let mut tracer = Tracer::from_env("table4_fig7");
    // The 2-local specialist against PHOENIX, as trait objects.
    let contenders: [Box<dyn CompilerStrategy>; 2] = [
        Box::new(Baseline::TwoQanStyle),
        Box::new(phoenix_compiler()),
    ];
    for h in qaoa::table4_suite(SEED) {
        let n = h.num_qubits();
        let [qan, phoenix] = contenders
            .each_ref()
            .map(|s| side(&s.compile_hardware(n, h.terms(), &device)));
        tracer.record_hardware(h.name(), &phoenix_compiler(), n, h.terms(), &device);
        eprintln!("[table4] {} done", h.name());
        entries.push(Entry {
            benchmark: h.name().to_string(),
            pauli: h.len(),
            qan,
            phoenix,
        });
    }

    println!("# Table IV: QAOA benchmarking versus 2QAN (heavy-hex)\n");
    println!(
        "{}",
        row(&[
            "Bench.",
            "#Pauli",
            "2QAN #CNOT",
            "PHX #CNOT",
            "2QAN D2Q",
            "PHX D2Q",
            "2QAN #SWAP",
            "PHX #SWAP",
            "2QAN ovh",
            "PHX ovh",
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 10]));
    let mut improv = [Vec::new(), Vec::new(), Vec::new()];
    for e in &entries {
        println!(
            "{}",
            row(&[
                e.benchmark.clone(),
                e.pauli.to_string(),
                e.qan.mapped.cnot.to_string(),
                e.phoenix.mapped.cnot.to_string(),
                e.qan.mapped.depth_2q.to_string(),
                e.phoenix.mapped.depth_2q.to_string(),
                e.qan.swaps.to_string(),
                e.phoenix.swaps.to_string(),
                format!("{:.2}x", e.qan.overhead),
                format!("{:.2}x", e.phoenix.overhead),
            ])
        );
        improv[0].push(1.0 - e.phoenix.mapped.cnot as f64 / e.qan.mapped.cnot as f64);
        improv[1].push(1.0 - e.phoenix.mapped.depth_2q as f64 / e.qan.mapped.depth_2q as f64);
        improv[2].push(1.0 - e.phoenix.swaps as f64 / e.qan.swaps.max(1) as f64);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nAvg. improvement: #CNOT {:.2}%, Depth-2Q {:.2}%, #SWAP {:.2}%",
        100.0 * avg(&improv[0]),
        100.0 * avg(&improv[1]),
        100.0 * avg(&improv[2]),
    );
    println!("\n## Logical 2Q depth (both near-optimal)\n");
    for e in &entries {
        println!(
            "- {}: 2QAN {}, PHOENIX {}",
            e.benchmark, e.qan.logical_depth_2q, e.phoenix.logical_depth_2q
        );
    }
    write_results("table4_fig7", &entries);
    tracer.finish();
}
