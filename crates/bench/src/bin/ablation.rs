//! Ablation study of PHOENIX's design choices (§IV), beyond the paper's
//! headline tables: each pipeline stage is disabled in isolation and the
//! logical + hardware-aware metrics re-measured on a UCCSD subset.
//!
//! Variants:
//! - **full**        — the complete pipeline;
//! - **no-simplify** — IR groups synthesized with conventional CNOT chains
//!   (Algorithm 1 off);
//! - **no-order**    — groups kept in first-appearance order (Tetris-like
//!   ordering off);
//! - **no-routesim** — ordering without the Eq. (7) similarity factor in
//!   hardware-aware mode;
//! - **lookahead-1** — greedy ordering without a window.

use phoenix_bench::{or_exit, row, write_results, Tracer, SEED};
use phoenix_core::{PhoenixCompiler, PhoenixOptions};
use phoenix_hamil::{uccsd, Molecule};
use phoenix_topology::CouplingGraph;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Entry {
    benchmark: String,
    /// variant → (logical #CNOT, logical 2Q depth, mapped #CNOT, mapped depth).
    variants: BTreeMap<String, (usize, usize, usize, usize)>,
}

fn variants() -> Vec<(&'static str, PhoenixOptions)> {
    let full = PhoenixOptions {
        verify: phoenix_bench::verify_enabled(),
        ..PhoenixOptions::default()
    };
    vec![
        ("full", full.clone()),
        (
            "no-simplify",
            PhoenixOptions {
                enable_simplification: false,
                ..full.clone()
            },
        ),
        (
            "no-order",
            PhoenixOptions {
                enable_ordering: false,
                ..full.clone()
            },
        ),
        (
            "lookahead-1",
            PhoenixOptions {
                lookahead: 1,
                ..full.clone()
            },
        ),
    ]
}

fn main() {
    let device = CouplingGraph::manhattan65();
    let mut entries = Vec::new();
    let mut tracer = Tracer::from_env("ablation");
    for (mol, frozen) in [
        (Molecule::lih(), true),
        (Molecule::nh(), true),
        (Molecule::lih(), false),
    ] {
        for enc in [uccsd::Encoding::JordanWigner, uccsd::Encoding::BravyiKitaev] {
            let h = uccsd::ansatz(mol, frozen, enc, SEED);
            let n = h.num_qubits();
            let mut rows = BTreeMap::new();
            for (name, opts) in variants() {
                let compiler = PhoenixCompiler::new(opts);
                let logical = or_exit(compiler.try_compile_to_cnot(n, h.terms()), h.name());
                let hw = or_exit(
                    compiler.try_compile_hardware_aware(n, h.terms(), &device),
                    h.name(),
                );
                tracer.record_logical(&format!("{}/{name}", h.name()), &compiler, n, h.terms());
                rows.insert(
                    name.to_string(),
                    (
                        logical.counts().cnot,
                        logical.depth_2q(),
                        hw.circuit.counts().cnot,
                        hw.circuit.depth_2q(),
                    ),
                );
            }
            eprintln!("[ablation] {} done", h.name());
            entries.push(Entry {
                benchmark: h.name().to_string(),
                variants: rows,
            });
        }
    }

    println!("# Ablation: PHOENIX design choices\n");
    println!(
        "{}",
        row(&[
            "Benchmark",
            "Variant",
            "log #CNOT",
            "log D2Q",
            "hw #CNOT",
            "hw D2Q"
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 6]));
    for e in &entries {
        for (v, (lc, ld, hc, hd)) in &e.variants {
            println!(
                "{}",
                row(&[
                    e.benchmark.clone(),
                    v.clone(),
                    lc.to_string(),
                    ld.to_string(),
                    hc.to_string(),
                    hd.to_string(),
                ])
            );
        }
    }
    write_results("ablation", &entries);
    tracer.finish();
}
