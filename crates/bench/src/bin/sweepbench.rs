//! VQE-sweep benchmark for the parametric compilation cache.
//!
//! Simulates a variational outer loop: one UCCSD ansatz (LiH), compiled
//! once cold and then re-bound with 1000 fresh angle vectors through a
//! shared [`CompileCache`]. Measures the cold-compile vs warm-rebind
//! speedup and the cache hit rate, spot-checks that warm outputs are
//! bit-for-bit identical to from-scratch compiles of the same angles, and
//! writes `results/BENCH_sweep.json`.
//!
//! The run is self-asserting (the CI cache smoke step relies on this):
//! it exits nonzero unless speedup ≥ 20×, program hit rate > 0.95, and
//! every spot check is exactly equal.
//!
//! Usage: `sweepbench [--quick]` — `--quick` sweeps 50 points (CI smoke).

use std::sync::Arc;
use std::time::Instant;

use phoenix_bench::{or_exit, row, write_results, SEED};
use phoenix_core::{CompileCache, CompileRequest, Target};
use phoenix_hamil::{uccsd, Molecule};
use phoenix_mathkit::Xoshiro256;
use phoenix_pauli::PauliString;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    qubits: usize,
    terms: usize,
    points: usize,
    /// Full uncached compile wall-clock (best of reps).
    cold_compile_ms: f64,
    /// First cached point: structure compile + artifact decode + bind.
    structure_ms: f64,
    /// Mean warm rebind wall-clock over the remaining points.
    warm_bind_ms: f64,
    /// cold_compile_ms / warm_bind_ms.
    rebind_speedup: f64,
    /// Program-level cache hit rate over the sweep.
    program_hit_rate: f64,
    /// Warm outputs matched from-scratch compiles bit-for-bit.
    warm_equals_cold: bool,
}

fn angles_for(point: usize, count: usize) -> Vec<f64> {
    let mut rng = Xoshiro256::seed_from_u64(SEED ^ (point as u64).wrapping_mul(0x9e37));
    (0..count).map(|_| rng.next_range_f64(-0.5, 0.5)).collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let points = if quick { 50 } else { 1000 };
    let reps = if quick { 1 } else { 3 };

    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, SEED);
    let n = h.num_qubits();
    let terms = h.terms().to_vec();
    println!(
        "# Parametric-cache VQE sweep: LiH UCCSD, {} qubits, {} terms, {points} points\n",
        n,
        terms.len()
    );

    // Cold reference: the legacy single-shot compile, no cache attached.
    let mut cold_ms = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = or_exit(CompileRequest::new(n, &terms).run(), "cold compile");
        cold_ms = cold_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }

    // The sweep: every point re-binds fresh angles through the shared cache.
    let cache = Arc::new(CompileCache::new());
    let mut structure_ms = 0.0;
    let mut warm_total_ms = 0.0;
    let mut warm_equals_cold = true;
    let spot_points = [0, points / 2, points - 1];
    for point in 0..points {
        let angles = angles_for(point, terms.len());
        let t = Instant::now();
        let out = or_exit(
            CompileRequest::new(n, &terms).cache(&cache).bind(&angles),
            "sweep bind",
        );
        let dt = t.elapsed().as_secs_f64() * 1e3;
        if point == 0 {
            structure_ms = dt;
        } else {
            warm_total_ms += dt;
        }
        if spot_points.contains(&point) {
            // Bit-for-bit spot check: a from-scratch compile of the same
            // angles must match the warm rebind exactly.
            let reparam: Vec<(PauliString, f64)> = terms
                .iter()
                .zip(&angles)
                .map(|((p, _), a)| (p.clone(), *a))
                .collect();
            let fresh = or_exit(CompileRequest::new(n, &reparam).run(), "spot check");
            if fresh.circuit != out.circuit || fresh.term_order != out.term_order {
                eprintln!("sweepbench: warm output diverged at point {point}");
                warm_equals_cold = false;
            }
        }
    }
    // One lowered-target spot check: the split path must agree with the
    // legacy path after CNOT lowering too.
    {
        let angles = angles_for(points, terms.len());
        let warm = or_exit(
            CompileRequest::new(n, &terms)
                .target(Target::Cnot)
                .cache(&cache)
                .bind(&angles),
            "cnot bind",
        );
        let reparam: Vec<(PauliString, f64)> = terms
            .iter()
            .zip(&angles)
            .map(|((p, _), a)| (p.clone(), *a))
            .collect();
        let fresh = or_exit(
            CompileRequest::new(n, &reparam).target(Target::Cnot).run(),
            "cnot spot check",
        );
        if fresh.circuit != warm.circuit {
            eprintln!("sweepbench: CNOT-target warm output diverged");
            warm_equals_cold = false;
        }
    }

    let warm_ms = warm_total_ms / (points - 1) as f64;
    let speedup = cold_ms / warm_ms;
    let stats = cache.stats();
    let hit_rate = stats.program_hit_rate();

    println!(
        "{}",
        row(&[
            "Benchmark",
            "#Qubit",
            "#Term",
            "cold ms",
            "struct ms",
            "warm ms",
            "speedup",
            "hit rate"
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 8]));
    println!(
        "{}",
        row(&[
            "LiH_frz_sweep".to_string(),
            n.to_string(),
            terms.len().to_string(),
            format!("{cold_ms:.2}"),
            format!("{structure_ms:.2}"),
            format!("{warm_ms:.4}"),
            format!("{speedup:.0}x"),
            format!("{hit_rate:.3}"),
        ])
    );

    let rows = vec![Row {
        benchmark: "LiH_frz_sweep".to_string(),
        qubits: n,
        terms: terms.len(),
        points,
        cold_compile_ms: cold_ms,
        structure_ms,
        warm_bind_ms: warm_ms,
        rebind_speedup: speedup,
        program_hit_rate: hit_rate,
        warm_equals_cold,
    }];
    write_results("BENCH_sweep", &rows);

    let mut ok = true;
    if speedup < 20.0 {
        eprintln!("sweepbench: FAIL rebind speedup {speedup:.1}x < 20x");
        ok = false;
    }
    if hit_rate <= 0.95 {
        eprintln!("sweepbench: FAIL program hit rate {hit_rate:.3} <= 0.95");
        ok = false;
    }
    if !warm_equals_cold {
        eprintln!("sweepbench: FAIL warm outputs are not bit-for-bit cold-identical");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!("\nsweepbench: OK (speedup {speedup:.0}x, hit rate {hit_rate:.3}, warm == cold)");
}
