//! Table I — UCCSD benchmark suite characteristics.
//!
//! For each of the 16 UCCSD benchmarks: qubit count, `#Pauli`, `w_max`, and
//! the conventional ("original") circuit's `#Gate`, `#CNOT`, `Depth`,
//! `Depth-2Q`.
//!
//! Usage: `table1 [--quick] [--trace] [--obs] [--device <spec>]` —
//! `--quick` runs the two smallest benchmarks only (the CI smoke
//! configuration); `--trace`/`--obs` file pass traces and observability
//! reports under `results/`. `--device <spec>` resolves a registry device
//! (`line:N`, `grid:RxC`, `heavy-hex:RxL`, `ion-trap:N`, presets; optional
//! `@isa` suffix) and records instrumented device-targeted compilations
//! instead of logical ones — the what-if variant of the fixed table.

use phoenix_baselines::Baseline;
use phoenix_bench::{or_exit, phoenix_compiler, row, write_results, Metrics, Tracer, SEED};
use phoenix_core::{CompilerStrategy, Device, DeviceRegistry};
use phoenix_hamil::uccsd;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    qubits: usize,
    pauli: usize,
    w_max: usize,
    metrics: Metrics,
}

/// The registry device named by `--device <spec>`, if any.
fn device_arg() -> Option<Device> {
    let args: Vec<String> = std::env::args().collect();
    let i = args.iter().position(|a| a == "--device")?;
    let spec = args.get(i + 1).unwrap_or_else(|| {
        eprintln!("error: --device needs a registry spec (e.g. grid:4x4)");
        std::process::exit(2);
    });
    Some(or_exit(DeviceRegistry::new().build(spec), spec))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let device = device_arg();
    println!("# Table I: UCCSD benchmark suite\n");
    println!(
        "{}",
        row(&[
            "Benchmark",
            "#Qubit",
            "#Pauli",
            "w_max",
            "#Gate",
            "#CNOT",
            "Depth",
            "Depth-2Q"
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 8]));
    let mut rows = Vec::new();
    let mut tracer = Tracer::from_env("table1");
    let original: &dyn CompilerStrategy = &Baseline::Naive;
    let phoenix = phoenix_compiler();
    let suite = uccsd::table1_suite(SEED);
    let take = if quick { 2 } else { suite.len() };
    for h in suite.into_iter().take(take) {
        let naive = original.compile_logical(h.num_qubits(), h.terms());
        let m = Metrics::of(&naive);
        match &device {
            Some(dev) if dev.graph().num_qubits() >= h.num_qubits() => {
                tracer.record_device(h.name(), &phoenix, h.num_qubits(), h.terms(), dev);
            }
            Some(dev) => eprintln!(
                "note: {} has {} qubits, skipping {}-qubit {}",
                dev.name(),
                dev.graph().num_qubits(),
                h.num_qubits(),
                h.name()
            ),
            None => tracer.record_logical(h.name(), &phoenix, h.num_qubits(), h.terms()),
        }
        println!(
            "{}",
            row(&[
                h.name().to_string(),
                h.num_qubits().to_string(),
                h.len().to_string(),
                h.max_weight().to_string(),
                m.gates.to_string(),
                m.cnot.to_string(),
                m.depth.to_string(),
                m.depth_2q.to_string(),
            ])
        );
        rows.push(Row {
            benchmark: h.name().to_string(),
            qubits: h.num_qubits(),
            pauli: h.len(),
            w_max: h.max_weight(),
            metrics: m,
        });
    }
    write_results("table1", &rows);
    tracer.finish();
}
