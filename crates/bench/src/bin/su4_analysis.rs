//! SU(4)-ISA block analysis (beyond the paper): for each compiler's
//! SU(4)-rebased output, classify every fused block by its Weyl-chamber
//! minimal CNOT cost. This measures how much entangling power each native
//! 2Q instruction actually carries — and how far the CNOT-ISA outputs sit
//! above their theoretical floors.

use phoenix_baselines::strategies;
use phoenix_bench::{or_exit, phoenix_compiler, row, short_label, write_results, Tracer, SEED};
use phoenix_circuit::{kak, peephole, rebase, weyl, Circuit, Gate};
use phoenix_core::CompilerStrategy;
use phoenix_hamil::{uccsd, Molecule};
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize, Default, Clone, Copy)]
struct CostHistogram {
    cost0: usize,
    cost1: usize,
    cost2: usize,
    cost3: usize,
}

impl CostHistogram {
    fn total_blocks(&self) -> usize {
        self.cost0 + self.cost1 + self.cost2 + self.cost3
    }

    fn cnot_floor(&self) -> usize {
        self.cost1 + 2 * self.cost2 + 3 * self.cost3
    }
}

fn histogram(su4_circuit: &Circuit) -> CostHistogram {
    let mut h = CostHistogram::default();
    for g in su4_circuit.gates() {
        if let Gate::Su4(blk) = g {
            match weyl::su4_block_cost(blk) {
                0 => h.cost0 += 1,
                1 => h.cost1 += 1,
                2 => h.cost2 += 1,
                _ => h.cost3 += 1,
            }
        }
    }
    h
}

fn main() {
    let mut results: BTreeMap<String, BTreeMap<String, (CostHistogram, usize, usize)>> =
        BTreeMap::new();
    let mut tracer = Tracer::from_env("su4_analysis");
    // Baselines reach SU(4) by CNOT compile + rebase.
    let baselines: Vec<Box<dyn CompilerStrategy>> = strategies()
        .into_iter()
        .filter(|s| matches!(s.name(), "Paulihedral-style" | "TKET-style"))
        .collect();
    println!("# SU(4) block analysis: Weyl-class histogram and CNOT floors\n");
    println!(
        "{}",
        row(&[
            "Benchmark",
            "Compiler",
            "#SU4",
            "c=0",
            "c=1",
            "c=2",
            "c=3",
            "CNOT floor",
            "actual CNOT",
            "KAK-resynth CNOT",
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 10]));
    for (mol, frozen) in [(Molecule::lih(), true), (Molecule::nh(), true)] {
        for enc in [uccsd::Encoding::JordanWigner, uccsd::Encoding::BravyiKitaev] {
            let h = uccsd::ansatz(mol, frozen, enc, SEED);
            let n = h.num_qubits();
            let mut per = BTreeMap::new();
            // PHOENIX: direct SU(4) emission.
            let phoenix = phoenix_compiler();
            let p_su4 = or_exit(phoenix.try_compile_to_su4(n, h.terms()), h.name());
            let p_cnot = or_exit(phoenix.try_compile_to_cnot(n, h.terms()), h.name())
                .counts()
                .cnot;
            let p_resynth = peephole::optimize(&kak::resynthesize(&p_su4)).counts().cnot;
            per.insert(
                "PHOENIX".to_string(),
                (histogram(&p_su4), p_cnot, p_resynth),
            );
            tracer.record_logical(h.name(), &phoenix, n, h.terms());
            // Baselines: CNOT compile + rebase.
            for strategy in &baselines {
                let logical = strategy.compile_optimized(n, h.terms());
                let su4 = rebase::to_su4(&logical);
                let resynth = peephole::optimize(&kak::resynthesize(&su4)).counts().cnot;
                per.insert(
                    short_label(strategy.name()).to_string(),
                    (histogram(&su4), logical.counts().cnot, resynth),
                );
            }
            for (name, (hist, actual, resynth)) in &per {
                println!(
                    "{}",
                    row(&[
                        h.name().to_string(),
                        name.clone(),
                        hist.total_blocks().to_string(),
                        hist.cost0.to_string(),
                        hist.cost1.to_string(),
                        hist.cost2.to_string(),
                        hist.cost3.to_string(),
                        hist.cnot_floor().to_string(),
                        actual.to_string(),
                        resynth.to_string(),
                    ])
                );
            }
            eprintln!("[su4] {} done", h.name());
            results.insert(h.name().to_string(), per);
        }
    }
    write_results("su4_analysis", &results);
    tracer.finish();
}
