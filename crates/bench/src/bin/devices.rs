//! Device sweep (beyond the paper): PHOENIX hardware-aware compilation
//! across heavy-hex generations (Falcon-27, Manhattan-65, Eagle-127) and
//! non-heavy-hex shapes (grid, line), with per-device noise-aware
//! predicted fidelities from the registry's seeded error profiles.

use phoenix_bench::{or_exit, phoenix_compiler, row, write_results, Tracer, SEED};

use phoenix_core::{Device, DeviceRegistry, Target};
use phoenix_hamil::{uccsd, Molecule};
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    benchmark: String,
    device: String,
    cnot: usize,
    depth_2q: usize,
    swaps: usize,
    overhead: f64,
    fidelity: f64,
}

fn devices() -> Vec<Device> {
    let registry = DeviceRegistry::new();
    ["falcon27", "manhattan65", "eagle127", "grid:4x4", "line:16"]
        .iter()
        .map(|spec| or_exit(registry.build(spec), spec))
        .collect()
}

fn main() {
    let mut entries = Vec::new();
    let mut tracer = Tracer::from_env("devices");
    println!("# Device sweep: PHOENIX hardware-aware across topologies\n");
    println!(
        "{}",
        row(&[
            "Benchmark",
            "Device",
            "#CNOT",
            "D2Q",
            "#SWAP",
            "ovh",
            "pred. fidelity"
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 7]));
    for (mol, frozen) in [(Molecule::lih(), true), (Molecule::nh(), true)] {
        let h = uccsd::ansatz(mol, frozen, uccsd::Encoding::JordanWigner, SEED);
        for device in devices() {
            if device.graph().num_qubits() < h.num_qubits() {
                continue;
            }
            let outcome = or_exit(
                phoenix_compiler()
                    .request(h.num_qubits(), h.terms())
                    .target(Target::Device(device.clone()))
                    .run(),
                h.name(),
            );
            let hw = or_exit(
                outcome.hardware.as_ref().ok_or("hardware program missing"),
                h.name(),
            );
            tracer.record_device(
                &format!("{}/{}", h.name(), device.name()),
                &phoenix_compiler(),
                h.num_qubits(),
                h.terms(),
                &device,
            );
            let e = Entry {
                benchmark: h.name().to_string(),
                device: device.name().to_string(),
                cnot: hw.circuit.counts().cnot,
                depth_2q: hw.circuit.depth_2q(),
                swaps: hw.num_swaps,
                overhead: hw.routing_overhead(),
                fidelity: device.predicted_fidelity(&outcome.circuit),
            };
            println!(
                "{}",
                row(&[
                    e.benchmark.clone(),
                    e.device.clone(),
                    e.cnot.to_string(),
                    e.depth_2q.to_string(),
                    e.swaps.to_string(),
                    format!("{:.2}x", e.overhead),
                    format!("{:.3e}", e.fidelity),
                ])
            );
            entries.push(e);
        }
    }
    write_results("devices", &entries);
    tracer.finish();
}
