//! Device sweep (beyond the paper): PHOENIX hardware-aware compilation
//! across heavy-hex generations (Falcon-27, Manhattan-65, Eagle-127) and
//! non-heavy-hex shapes (grid, line), with noise-model success estimates.

use phoenix_bench::{or_exit, phoenix_compiler, row, write_results, Tracer, SEED};

use phoenix_hamil::{uccsd, Molecule};
use phoenix_sim::noise::ErrorModel;
use phoenix_topology::CouplingGraph;
use serde::Serialize;

#[derive(Serialize)]
struct Entry {
    benchmark: String,
    device: String,
    cnot: usize,
    depth_2q: usize,
    swaps: usize,
    overhead: f64,
    est_success: f64,
}

fn devices() -> Vec<(&'static str, CouplingGraph)> {
    vec![
        ("falcon27", CouplingGraph::falcon27()),
        ("manhattan65", CouplingGraph::manhattan65()),
        ("eagle127", CouplingGraph::eagle127()),
        ("grid4x4", CouplingGraph::grid(4, 4)),
        ("line16", CouplingGraph::line(16)),
    ]
}

fn main() {
    let model = ErrorModel::ibm_like();
    let mut entries = Vec::new();
    let mut tracer = Tracer::from_env("devices");
    println!("# Device sweep: PHOENIX hardware-aware across topologies\n");
    println!(
        "{}",
        row(&[
            "Benchmark",
            "Device",
            "#CNOT",
            "D2Q",
            "#SWAP",
            "ovh",
            "est. success"
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 7]));
    for (mol, frozen) in [(Molecule::lih(), true), (Molecule::nh(), true)] {
        let h = uccsd::ansatz(mol, frozen, uccsd::Encoding::JordanWigner, SEED);
        for (name, device) in devices() {
            if device.num_qubits() < h.num_qubits() {
                continue;
            }
            let hw = or_exit(
                phoenix_compiler().try_compile_hardware_aware(h.num_qubits(), h.terms(), &device),
                h.name(),
            );
            tracer.record_hardware(
                &format!("{}/{name}", h.name()),
                &phoenix_compiler(),
                h.num_qubits(),
                h.terms(),
                &device,
            );
            let e = Entry {
                benchmark: h.name().to_string(),
                device: name.to_string(),
                cnot: hw.circuit.counts().cnot,
                depth_2q: hw.circuit.depth_2q(),
                swaps: hw.num_swaps,
                overhead: hw.routing_overhead(),
                est_success: model.success_probability(&hw.circuit),
            };
            println!(
                "{}",
                row(&[
                    e.benchmark.clone(),
                    e.device.clone(),
                    e.cnot.to_string(),
                    e.depth_2q.to_string(),
                    e.swaps.to_string(),
                    format!("{:.2}x", e.overhead),
                    format!("{:.3e}", e.est_success),
                ])
            );
            entries.push(e);
        }
    }
    write_results("devices", &entries);
    tracer.finish();
}
