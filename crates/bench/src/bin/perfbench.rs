//! Perf-regression harness for stage 2 (Algorithm 1 BSF simplification).
//!
//! Times the incremental [`CostEvaluator`]-backed candidate scan against the
//! naive clone-and-rescore reference on the UCCSD molecules, plus the
//! end-to-end logical compile and the cold-compile vs warm-rebind ratio of
//! the parametric cache, and writes `results/BENCH_stage2.json`.
//! While timing it also cross-checks that both paths produce identical
//! `SimplifiedGroup`s, so a perf run doubles as an exactness check.
//!
//! Usage: `perfbench [--quick] [--trace] [--obs]` — `--quick` runs one
//! repetition of LiH only (the CI smoke configuration); `--trace`/`--obs`
//! file pass traces and observability reports under `results/`.

use std::sync::Arc;

use phoenix_bench::{or_exit, phoenix_compiler, row, write_results, Tracer, SEED};
use phoenix_core::group::group_by_support;
use phoenix_core::simplify::simplify_terms_with;
use phoenix_core::{CompileCache, CompileRequest, SimplifiedGroup, SimplifyOptions};
use phoenix_hamil::{uccsd, Molecule};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    qubits: usize,
    /// Packed `u64` words per Pauli mask at this width (1–2 words stay in
    /// the inline representation; more spill to the heap).
    mask_words: usize,
    groups: usize,
    reps: usize,
    /// Stage-2 wall-clock with the naive clone-and-rescore evaluator ("before").
    stage2_naive_ms: f64,
    /// Stage-2 wall-clock with the incremental evaluator ("after").
    stage2_incremental_ms: f64,
    /// naive / incremental.
    stage2_speedup: f64,
    /// End-to-end `compile_to_cnot` wall-clock (incremental evaluator).
    end_to_end_ms: f64,
    /// Uncached logical compile wall-clock (best of reps).
    cold_compile_ms: f64,
    /// Warm `bind` through a primed cache (best of reps).
    warm_rebind_ms: f64,
    /// cold / warm.
    rebind_speedup: f64,
}

/// Times an uncached logical compile against a warm `bind` through a primed
/// cache, returning (cold best-of-reps ms, warm best-of-reps ms).
fn time_rebind(
    n: usize,
    terms: &[(phoenix_pauli::PauliString, f64)],
    reps: usize,
    label: &str,
) -> (f64, f64) {
    let mut cold = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = or_exit(CompileRequest::new(n, terms).run(), label);
        cold = cold.min(t.elapsed().as_secs_f64() * 1e3);
    }
    let cache = Arc::new(CompileCache::new());
    let angles: Vec<f64> = terms.iter().map(|(_, c)| c * 0.7 + 1e-3).collect();
    // Prime the cache (structure miss), then time warm rebinds only.
    let _ = or_exit(
        CompileRequest::new(n, terms).cache(&cache).bind(&angles),
        label,
    );
    let mut warm = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let _ = or_exit(
            CompileRequest::new(n, terms).cache(&cache).bind(&angles),
            label,
        );
        warm = warm.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (cold, warm)
}

/// Runs stage 2 over every group, returning (best wall-clock over `reps`
/// runs in ms, outputs of the last run).
fn time_stage2(
    n: usize,
    groups: &[phoenix_core::IrGroup],
    opts: &SimplifyOptions,
    reps: usize,
) -> (f64, Vec<SimplifiedGroup>) {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..reps {
        let t = Instant::now();
        out = groups
            .iter()
            .map(|g| simplify_terms_with(n, g.terms(), opts))
            .collect();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let molecules: &[(Molecule, bool, &str)] = if quick {
        &[(Molecule::lih(), true, "LiH_frz")]
    } else {
        &[
            (Molecule::lih(), true, "LiH_frz"),
            (Molecule::nh(), true, "NH_frz"),
            (Molecule::h2o(), false, "H2O_cmplt"),
        ]
    };

    println!("# Stage-2 perf regression: naive vs incremental candidate evaluation\n");
    println!(
        "{}",
        row(&[
            "Benchmark",
            "#Qubit",
            "words",
            "#Group",
            "naive ms",
            "incr ms",
            "speedup",
            "e2e ms",
            "cold ms",
            "warm ms",
            "rebind"
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 11]));

    let naive_opts = SimplifyOptions {
        naive_cost: true,
        ..SimplifyOptions::default()
    };
    let incr_opts = SimplifyOptions::default();

    let mut tracer = Tracer::from_env("perfbench");
    let mut rows = Vec::new();
    for &(mol, frozen, label) in molecules {
        let h = uccsd::ansatz(mol, frozen, uccsd::Encoding::JordanWigner, SEED);
        let n = h.num_qubits();
        let groups = group_by_support(n, h.terms());

        let (naive_ms, naive_out) = time_stage2(n, &groups, &naive_opts, reps);
        let (incr_ms, incr_out) = time_stage2(n, &groups, &incr_opts, reps);
        assert_eq!(naive_out, incr_out, "{label}: evaluator paths diverge");

        let mut e2e_ms = f64::INFINITY;
        for _ in 0..reps {
            let t = Instant::now();
            let _ = or_exit(phoenix_compiler().try_compile_to_cnot(n, h.terms()), label);
            e2e_ms = e2e_ms.min(t.elapsed().as_secs_f64() * 1e3);
        }
        tracer.record_logical(label, &phoenix_compiler(), n, h.terms());

        let (cold_ms, warm_ms) = time_rebind(n, h.terms(), reps, label);
        let rebind_speedup = cold_ms / warm_ms;

        let speedup = naive_ms / incr_ms;
        println!(
            "{}",
            row(&[
                label.to_string(),
                n.to_string(),
                phoenix_pauli::mask::words_for(n).to_string(),
                groups.len().to_string(),
                format!("{naive_ms:.2}"),
                format!("{incr_ms:.2}"),
                format!("{speedup:.2}x"),
                format!("{e2e_ms:.2}"),
                format!("{cold_ms:.2}"),
                format!("{warm_ms:.4}"),
                format!("{rebind_speedup:.0}x"),
            ])
        );
        rows.push(Row {
            benchmark: label.to_string(),
            qubits: n,
            mask_words: phoenix_pauli::mask::words_for(n),
            groups: groups.len(),
            reps,
            stage2_naive_ms: naive_ms,
            stage2_incremental_ms: incr_ms,
            stage2_speedup: speedup,
            end_to_end_ms: e2e_ms,
            cold_compile_ms: cold_ms,
            warm_rebind_ms: warm_ms,
            rebind_speedup,
        });
    }

    tracer.finish();
    write_results("BENCH_stage2", &rows);
}
