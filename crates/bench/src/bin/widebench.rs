//! Wide-register compilation benchmark: packed-mask scaling past 128 qubits.
//!
//! The packed [`QubitMask`](phoenix_pauli::QubitMask) representation lifts
//! the historical `u128` width cap, so PHOENIX can compile 500+ qubit
//! Trotterized spin-chain programs at the logical level. This binary times
//! that path on transverse-field Ising and Heisenberg chains, verifies each
//! compiled circuit with the width-independent stabilizer tier (the Clifford
//! skeleton of the high-level circuit must be the identity, and the emitted
//! term order must be a permutation of the input program), and writes
//! `results/BENCH_width.json`.
//!
//! Usage: `widebench [--quick]` — `--quick` caps the sweep at 256 qubits
//! with one repetition (the CI smoke configuration); the full sweep runs
//! 128/256/500 qubits, best of 3.

use std::time::Instant;

use phoenix_bench::{or_exit, phoenix_compiler, row, write_results};
use phoenix_core::CompiledProgram;
use phoenix_hamil::models::{heisenberg_chain, tfim_chain};
use phoenix_pauli::PauliString;
use phoenix_verify::engine::{check_skeleton_identity, Outcome};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    benchmark: String,
    qubits: usize,
    terms: usize,
    groups: usize,
    reps: usize,
    /// Logical `try_compile` wall-clock (best of reps), milliseconds.
    compile_ms: f64,
    /// Gates in the high-level circuit.
    gates: usize,
    /// 2Q gates in the high-level circuit.
    two_qubit_gates: usize,
    /// Stabilizer-tier verification verdict (`pass` / `fail: …`).
    verified: String,
}

/// Sorted multiset key of a term list; two lists are permutations of each
/// other iff their keys match. Identity terms are excluded (pure global
/// phase, legitimately droppable).
fn multiset(terms: &[(PauliString, f64)]) -> Vec<(String, i64)> {
    let mut v: Vec<_> = terms
        .iter()
        .filter(|(p, _)| !p.is_identity())
        .map(|(p, c)| (p.to_string(), (c * 1e12).round() as i64))
        .collect();
    v.sort_unstable();
    v
}

/// The width-independent verification tier: Clifford-skeleton identity
/// (stabilizer tableau, any `n`) plus term-order permutation equivalence.
fn verify_wide(out: &CompiledProgram, input: &[(PauliString, f64)]) -> String {
    if multiset(&out.term_order) != multiset(input) {
        return "fail: term order is not a permutation of the input".to_string();
    }
    match check_skeleton_identity(&out.circuit) {
        Outcome::Pass(_) => "pass".to_string(),
        Outcome::Fail { detail, .. } => format!("fail: {detail}"),
        Outcome::Skipped(why) => format!("fail: skeleton check skipped ({why})"),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let reps = if quick { 1 } else { 3 };
    let widths: &[usize] = if quick { &[128, 256] } else { &[128, 256, 500] };

    println!("# Wide-register compilation: packed masks past the u128 cap\n");
    println!(
        "{}",
        row(&[
            "Benchmark",
            "#Qubit",
            "#Term",
            "#Group",
            "compile ms",
            "gates",
            "2Q",
            "verified"
        ]
        .map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 8]));

    let mut rows = Vec::new();
    let mut failed = false;
    for &n in widths {
        let programs = [
            ("TFIM_chain", tfim_chain(n, 1.0, 0.5)),
            ("Heis_chain", heisenberg_chain(n, 1.0, 1.0, 0.5)),
        ];
        for (name, h) in programs {
            let label = format!("{name}_{n}");
            let mut best = f64::INFINITY;
            let mut out = None;
            for _ in 0..reps {
                let t = Instant::now();
                let program = or_exit(phoenix_compiler().try_compile(n, h.terms()), &label);
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
                out = Some(program);
            }
            let out = out.expect("at least one rep");
            let verified = verify_wide(&out, h.terms());
            failed |= verified != "pass";
            let counts = out.circuit.counts();
            println!(
                "{}",
                row(&[
                    label.clone(),
                    n.to_string(),
                    h.len().to_string(),
                    out.num_groups.to_string(),
                    format!("{best:.1}"),
                    out.circuit.len().to_string(),
                    counts.two_qubit().to_string(),
                    verified.clone(),
                ])
            );
            rows.push(Row {
                benchmark: label,
                qubits: n,
                terms: h.len(),
                groups: out.num_groups,
                reps,
                compile_ms: best,
                gates: out.circuit.len(),
                two_qubit_gates: counts.two_qubit(),
                verified,
            });
        }
    }

    write_results("BENCH_width", &rows);
    if failed {
        eprintln!("widebench: verification FAILED");
        std::process::exit(1);
    }
}
