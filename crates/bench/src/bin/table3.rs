//! Table III — comparison across ISAs (CNOT vs SU(4)) and topologies
//! (all-to-all vs heavy-hex).
//!
//! Reports PHOENIX's geometric-mean relative rate (PHOENIX / baseline, in
//! percent — lower is better for PHOENIX) for 2Q gate count and 2Q depth in
//! each of the four regimes. Baselines rebase CNOT circuits into SU(4) ISA;
//! PHOENIX emits SU(4) blocks directly from its simplified IR.

use phoenix_baselines::{hardware_aware, strategies};
use phoenix_bench::{
    geomean, or_exit, phoenix_compiler, row, short_label, write_results, Tracer, SEED,
};
use phoenix_circuit::{peephole, rebase, Circuit};
use phoenix_core::CompilerStrategy;
use phoenix_hamil::uccsd;
use phoenix_topology::CouplingGraph;
use serde::Serialize;
use std::collections::BTreeMap;

/// (2Q gate count, 2Q depth) of a circuit whose 2Q gates are homogeneous.
fn metrics_2q(c: &Circuit) -> (f64, f64) {
    (c.counts().two_qubit() as f64, c.depth_2q() as f64)
}

#[derive(Serialize)]
struct Regime {
    name: String,
    /// baseline → (geomean 2Q-count ratio, geomean depth ratio).
    vs: BTreeMap<String, (f64, f64)>,
}

fn main() {
    let device = CouplingGraph::manhattan65();
    let suite = uccsd::table1_suite(SEED);
    let mut tracer = Tracer::from_env("table3");
    // Every general-purpose baseline, as trait objects.
    let baselines: Vec<Box<dyn CompilerStrategy>> = strategies()
        .into_iter()
        .filter(|s| !matches!(s.name(), "original" | "PHOENIX"))
        .collect();

    // Per benchmark, per regime: metric for phoenix and each baseline.
    let mut ratios: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for h in &suite {
        let n = h.num_qubits();
        let phoenix = phoenix_compiler();
        // Logical circuits.
        let p_cnot = or_exit(phoenix.try_compile_to_cnot(n, h.terms()), h.name());
        let p_su4 = or_exit(phoenix.try_compile_to_su4(n, h.terms()), h.name());
        let p_hw = or_exit(
            phoenix.try_compile_hardware_aware(n, h.terms(), &device),
            h.name(),
        );
        let p_hw_su4 = rebase::to_su4(&p_hw.circuit);
        tracer.record_hardware(h.name(), &phoenix, n, h.terms(), &device);
        for strategy in &baselines {
            let name = short_label(strategy.name());
            let b_logical = peephole::optimize(&strategy.compile_logical(n, h.terms()));
            let b_su4 = rebase::to_su4(&b_logical);
            let b_hw = hardware_aware(&b_logical, &device);
            let b_hw_su4 = rebase::to_su4(&b_hw.circuit);
            for (regime, p, bl) in [
                ("CNOT all-to-all", &p_cnot, &b_logical),
                ("SU(4) all-to-all", &p_su4, &b_su4),
                ("CNOT heavy-hex", &p_hw.circuit, &b_hw.circuit),
                ("SU(4) heavy-hex", &p_hw_su4, &b_hw_su4),
            ] {
                let (pc, pd) = metrics_2q(p);
                let (bc, bd) = metrics_2q(bl);
                ratios
                    .entry((regime.to_string(), name.to_string()))
                    .or_default()
                    .push((pc / bc, pd / bd));
            }
        }
        eprintln!("[table3] {} done", h.name());
    }

    println!("# Table III: PHOENIX's relative opt. rate across ISAs/topologies\n");
    println!(
        "{}",
        row(&["Regime", "vs", "#2Q rate", "Depth-2Q rate"].map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 4]));
    let mut regimes = Vec::new();
    for regime in [
        "CNOT all-to-all",
        "SU(4) all-to-all",
        "CNOT heavy-hex",
        "SU(4) heavy-hex",
    ] {
        let mut vs = BTreeMap::new();
        for strategy in &baselines {
            let name = short_label(strategy.name());
            let rs = &ratios[&(regime.to_string(), name.to_string())];
            let gc = geomean(&rs.iter().map(|r| r.0).collect::<Vec<_>>());
            let gd = geomean(&rs.iter().map(|r| r.1).collect::<Vec<_>>());
            println!(
                "{}",
                row(&[
                    regime.to_string(),
                    name.to_string(),
                    format!("{:.2}%", 100.0 * gc),
                    format!("{:.2}%", 100.0 * gd),
                ])
            );
            vs.insert(name.to_string(), (gc, gd));
        }
        regimes.push(Regime {
            name: regime.to_string(),
            vs,
        });
    }
    write_results("table3", &regimes);
    tracer.finish();
}
