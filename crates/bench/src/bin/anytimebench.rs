//! Quality-vs-budget benchmark for the anytime deepening path.
//!
//! Sweeps the logical round cap (`anytime_rounds`) over representative
//! programs — the LiH UCCSD ansatz, a TFIM chain, and (full mode) a
//! Heisenberg chain — under a wall budget too large to interrupt, so each
//! rung isolates what one more deepening round buys. Writes the
//! quality-vs-budget curve to `results/BENCH_anytime.json`.
//!
//! The run is self-asserting (the CI anytime smoke step relies on this):
//! it exits nonzero unless every program's cost is lexicographically
//! monotone non-increasing in the cap, every rung reports
//! `depth_reached == cap`, and the UCCSD case is *strictly* better at the
//! deepest cap than at the shallowest.
//!
//! Usage: `anytimebench [--quick]` — `--quick` sweeps 3 caps over 2
//! programs (CI smoke).

use std::time::{Duration, Instant};

use phoenix_bench::{or_exit, row, write_results, SEED};
use phoenix_core::{CompileRequest, PhoenixOptions, MAX_ROUNDS};
use phoenix_hamil::{models, uccsd, Molecule};
use phoenix_pauli::PauliString;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    program: String,
    qubits: usize,
    terms: usize,
    rounds_cap: usize,
    depth_reached: usize,
    two_qubit: usize,
    depth_2q: usize,
    gates: usize,
    millis: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let caps: &[usize] = if quick {
        &[0, 2, MAX_ROUNDS]
    } else {
        &[0, 1, 2, 4, 6, MAX_ROUNDS]
    };

    let lih = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, SEED);
    type Named = (String, usize, Vec<(PauliString, f64)>);
    let mut programs: Vec<Named> = vec![
        (
            "LiH_frz_UCCSD".to_string(),
            lih.num_qubits(),
            lih.terms().to_vec(),
        ),
        {
            let tfim = models::tfim_chain(10, 1.0, 0.5);
            (
                "TFIM_chain_10".to_string(),
                tfim.num_qubits(),
                tfim.terms().to_vec(),
            )
        },
    ];
    if !quick {
        let heis = models::heisenberg_chain(10, 1.0, 1.0, 1.0);
        programs.push((
            "Heisenberg_10".to_string(),
            heis.num_qubits(),
            heis.terms().to_vec(),
        ));
    }

    println!("# Anytime quality-vs-budget sweep: caps {caps:?}, roomy wall budget\n");
    println!(
        "{}",
        row(&["Program", "cap", "depth", "2Q", "2Q-depth", "gates", "ms"].map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 7]));

    let mut rows: Vec<Row> = Vec::new();
    let mut ok = true;
    let mut uccsd_improved = false;
    for (name, n, terms) in &programs {
        let mut prev: Option<(usize, usize, usize)> = None;
        let mut first: Option<(usize, usize, usize)> = None;
        for &cap in caps {
            let t = Instant::now();
            let out = or_exit(
                CompileRequest::new(*n, terms)
                    .options(PhoenixOptions {
                        pass_budget: Some(Duration::from_secs(600)),
                        anytime_rounds: Some(cap),
                        ..PhoenixOptions::default()
                    })
                    .run(),
                "anytime compile",
            );
            let millis = t.elapsed().as_secs_f64() * 1e3;
            let counts = out.circuit.counts();
            let cost = (counts.two_qubit(), out.circuit.depth_2q(), counts.total);
            let depth_reached = out.depth_reached.unwrap_or(0);
            println!(
                "{}",
                row(&[
                    name.clone(),
                    cap.to_string(),
                    depth_reached.to_string(),
                    cost.0.to_string(),
                    cost.1.to_string(),
                    cost.2.to_string(),
                    format!("{millis:.2}"),
                ])
            );
            if depth_reached != cap {
                eprintln!("anytimebench: FAIL {name} cap {cap} reported depth {depth_reached}");
                ok = false;
            }
            if let Some(p) = prev {
                if cost > p {
                    eprintln!("anytimebench: FAIL {name} cost rose {p:?} -> {cost:?} at cap {cap}");
                    ok = false;
                }
            }
            first.get_or_insert(cost);
            prev = Some(cost);
            rows.push(Row {
                program: name.clone(),
                qubits: *n,
                terms: terms.len(),
                rounds_cap: cap,
                depth_reached,
                two_qubit: cost.0,
                depth_2q: cost.1,
                gates: cost.2,
                millis,
            });
        }
        if name.contains("UCCSD") {
            if let (Some(shallow), Some(deep)) = (first, prev) {
                uccsd_improved = deep < shallow;
            }
        }
    }
    write_results("BENCH_anytime", &rows);

    if !uccsd_improved {
        eprintln!("anytimebench: FAIL UCCSD did not strictly improve at the deepest cap");
        ok = false;
    }
    if !ok {
        std::process::exit(1);
    }
    println!("\nanytimebench: OK (monotone quality-vs-budget curve, UCCSD strictly improved)");
}
