//! `fleetbench` — the what-if endpoint over the device fleet: compile one
//! dense program against every registry family at equal error rates and
//! report the fidelity ranking.
//!
//! Usage: `fleetbench [--quick]` — `--quick` shrinks the program to the CI
//! smoke size. The binary is self-asserting and exits nonzero when either
//! invariant breaks:
//!
//! 1. an all-to-all ion trap never ranks below a line of equal error
//!    rates on a dense (complete-graph) program, and
//! 2. the fleet outcome is identical across `fleet_threads` ∈ {1, 2, 8}.
//!
//! Results land in `results/BENCH_fleet.json`.

use phoenix_bench::{or_exit, row, write_results};
use phoenix_core::{
    CompileRequest, Device, DeviceRegistry, FleetOutcome, NoiseProfile, PhoenixOptions,
};
use phoenix_hamil::qaoa;
use serde::Serialize;

/// Equal error rates applied to every fleet member, so the ranking is
/// driven by routing and ISA alone.
const EPS_1Q: f64 = 5e-4;
const EPS_2Q: f64 = 5e-3;
const EPS_READOUT: f64 = 1e-2;

#[derive(Serialize)]
struct Entry {
    rank: usize,
    device: String,
    isa: String,
    fidelity: f64,
    two_qubit: usize,
    depth_2q: usize,
    swaps: usize,
}

#[derive(Serialize)]
struct Report {
    program: String,
    qubits: usize,
    terms: usize,
    ranking: Vec<Entry>,
}

/// Registry devices for an `n`-qubit dense program, renoised to the same
/// uniform profile.
fn fleet(n: usize, grid: &str) -> Vec<Device> {
    let registry = DeviceRegistry::new();
    let specs = [
        format!("ion-trap:{n}"),
        format!("ion-trap:{n}@cnot"),
        format!("line:{n}@cnot"),
        format!("ring:{n}@cnot"),
        grid.to_string(),
        "falcon27".to_string(),
    ];
    specs
        .iter()
        .map(|spec| {
            let dev = or_exit(registry.build(spec), spec);
            let noise = NoiseProfile::uniform(dev.graph(), EPS_1Q, EPS_2Q, EPS_READOUT);
            dev.with_noise(noise)
        })
        .collect()
}

fn run(
    n: usize,
    terms: &[(phoenix_pauli::PauliString, f64)],
    devices: &[Device],
    threads: usize,
) -> FleetOutcome {
    let options = PhoenixOptions {
        fleet_threads: threads,
        ..PhoenixOptions::default()
    };
    or_exit(
        CompileRequest::new(n, terms)
            .options(options)
            .fleet(devices),
        "fleet compile",
    )
}

fn fidelity_of(outcome: &FleetOutcome, device: &str) -> f64 {
    outcome
        .ranked
        .iter()
        .find(|e| e.device.name() == device)
        .unwrap_or_else(|| {
            eprintln!("FAIL: device {device} missing from the ranking");
            std::process::exit(1);
        })
        .fidelity
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, grid) = if quick {
        (8, "grid:2x4")
    } else {
        (12, "grid:3x4")
    };
    // A complete graph: every qubit pair interacts, the densest MaxCut
    // instance there is — worst case for sparse topologies.
    let edges: Vec<(usize, usize)> = (0..n)
        .flat_map(|u| ((u + 1)..n).map(move |v| (u, v)))
        .collect();
    let h = qaoa::maxcut_program(format!("K{n}"), n, &edges, 7);
    let devices = fleet(n, grid);

    let outcome = run(n, h.terms(), &devices, 0);
    if !outcome.failed.is_empty() {
        for (name, err) in &outcome.failed {
            eprintln!("FAIL: {name}: {err}");
        }
        std::process::exit(1);
    }

    println!(
        "# fleetbench: {} ({} qubits, {} terms)\n",
        h.name(),
        n,
        h.len()
    );
    println!(
        "{}",
        row(&["#", "Device", "ISA", "fidelity", "#2Q", "D2Q", "#SWAP"].map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 7]));
    let mut ranking = Vec::new();
    for (i, entry) in outcome.ranked.iter().enumerate() {
        let hw = or_exit(
            entry
                .outcome
                .hardware
                .as_ref()
                .ok_or("hardware program missing"),
            entry.device.name(),
        );
        let counts = entry.outcome.circuit.counts();
        let e = Entry {
            rank: i + 1,
            device: entry.device.name().to_string(),
            isa: entry.device.isa().name().to_string(),
            fidelity: entry.fidelity,
            two_qubit: counts.cnot + counts.su4,
            depth_2q: entry.outcome.circuit.depth_2q(),
            swaps: hw.num_swaps,
        };
        println!(
            "{}",
            row(&[
                e.rank.to_string(),
                e.device.clone(),
                e.isa.clone(),
                format!("{:.4}", e.fidelity),
                e.two_qubit.to_string(),
                e.depth_2q.to_string(),
                e.swaps.to_string(),
            ])
        );
        ranking.push(e);
    }

    // Invariant 1: all-to-all never ranks below a line at equal error
    // rates on a dense program — routing-free beats swap-heavy.
    let ion = fidelity_of(&outcome, &format!("ion-trap:{n}@cnot"));
    let line = fidelity_of(&outcome, &format!("line:{n}@cnot"));
    if ion < line {
        eprintln!("FAIL: ion-trap:{n}@cnot ({ion:.6}) ranked below line:{n}@cnot ({line:.6})");
        std::process::exit(1);
    }
    println!("\nok: ion-trap:{n}@cnot ({ion:.4}) >= line:{n}@cnot ({line:.4})");

    // Invariant 2: the outcome is identical for every thread count.
    for threads in [1usize, 2, 8] {
        let other = run(n, h.terms(), &devices, threads);
        let same = other.ranked.len() == outcome.ranked.len()
            && outcome
                .ranked
                .iter()
                .zip(other.ranked.iter())
                .all(|(a, b)| {
                    a.device.name() == b.device.name()
                        && a.fidelity == b.fidelity
                        && a.outcome.circuit == b.outcome.circuit
                });
        if !same {
            eprintln!("FAIL: fleet outcome differs at fleet_threads={threads}");
            std::process::exit(1);
        }
    }
    println!("ok: ranking identical across fleet_threads {{1, 2, 8}}");

    write_results(
        "BENCH_fleet",
        &Report {
            program: h.name().to_string(),
            qubits: n,
            terms: h.len(),
            ranking,
        },
    );
}
