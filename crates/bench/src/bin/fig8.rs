//! Fig. 8 — algorithmic error analysis (LiH and NH simulation).
//!
//! For the ≤10-qubit benchmarks (LiH_frz, NH_frz) under both encodings, the
//! Pauli coefficients are rescaled across a ladder of factors (different
//! evolution durations) and the unitary infidelity of each compiler's
//! *actual emitted circuit* against the exact evolution `exp(-iH)` is
//! measured. The paper compares PHOENIX with TKET; both series are printed
//! per scale point.

use phoenix_baselines::Baseline;
use phoenix_bench::{phoenix_compiler, write_results, Tracer, SEED};
use phoenix_core::CompilerStrategy;
use phoenix_hamil::{uccsd, Molecule};
use phoenix_sim::{circuit_unitary, exact_evolution, infidelity};
use serde::Serialize;

#[derive(Serialize)]
struct Series {
    benchmark: String,
    scale: f64,
    tket_error: f64,
    phoenix_error: f64,
}

const SCALES: [f64; 5] = [1.0, 2.0, 4.0, 8.0, 16.0];

fn main() {
    let mut out: Vec<Series> = Vec::new();
    let mut tracer = Tracer::from_env("fig8");
    let tket: &dyn CompilerStrategy = &Baseline::TketStyle;
    let phoenix_compiler = phoenix_compiler();
    let phoenix_strategy: &dyn CompilerStrategy = &phoenix_compiler;
    println!("# Fig. 8: algorithmic error (unitary infidelity vs exact evolution)\n");
    for mol in [Molecule::lih(), Molecule::nh()] {
        for enc in [uccsd::Encoding::JordanWigner, uccsd::Encoding::BravyiKitaev] {
            let base = uccsd::ansatz(mol, true, enc, SEED);
            let n = base.num_qubits();
            println!("## {} ({n} qubits, {} terms)", base.name(), base.len());
            // One expm at the base of the ladder; each doubling is a single
            // matrix squaring: exp(-i·2s·H) = exp(-i·s·H)².
            let mut exact = exact_evolution(n, base.rescaled(SCALES[0]).terms());
            for &s in &SCALES {
                let h = base.rescaled(s);
                let tket_u = circuit_unitary(&tket.compile_optimized(n, h.terms()));
                let phoenix_u = circuit_unitary(&phoenix_strategy.compile_logical(n, h.terms()));
                tracer.record_logical(
                    &format!("{}@{s}", base.name()),
                    &phoenix_compiler,
                    n,
                    h.terms(),
                );
                let te = infidelity(&exact, &tket_u).max(1e-16);
                let pe = infidelity(&exact, &phoenix_u).max(1e-16);
                println!(
                    "  scale {s:>5}: TKET-style {te:.3e}  PHOENIX {pe:.3e}  (ratio {:.2})",
                    pe / te
                );
                out.push(Series {
                    benchmark: base.name().to_string(),
                    scale: s,
                    tket_error: te,
                    phoenix_error: pe,
                });
                exact = exact.matmul(&exact); // ladder: next scale is 2s
            }
        }
    }
    // Per-encoding average reduction.
    for enc in ["JW", "BK"] {
        let rows: Vec<&Series> = out.iter().filter(|r| r.benchmark.ends_with(enc)).collect();
        let avg_red = rows
            .iter()
            .map(|r| 1.0 - r.phoenix_error / r.tket_error)
            .sum::<f64>()
            / rows.len() as f64;
        println!(
            "\nAverage error reduction vs TKET-style ({enc}): {:.1}%",
            100.0 * avg_red
        );
    }
    write_results("fig8", &out);
    tracer.finish();
}
