//! Stress-drive a real `phoenixd` subprocess with concurrent clients and
//! adversarial traffic, then SIGTERM it and audit the drain.
//!
//! The bench asserts the ISSUE's serving contract end to end:
//!
//! - the daemon process never dies, no matter what clients send;
//! - every request receives a typed reply — shed requests surface as
//!   `overloaded` (never a silent drop), malformed frames as
//!   `invalid_request`, oversized frames as `frame_too_large`;
//! - p99 admission (queue-wait) latency stays bounded;
//! - SIGTERM drains: the process exits 0 after answering all admitted work
//!   and writes its final report.
//!
//! Traffic mix per client: ~65% valid compiles (with retry/backoff through
//! overload), 10% malformed, 5% oversized, 10% cancellation pairs, 5%
//! zero-deadline, 5% pings — ≥ 20% adversarial.
//!
//! ```text
//! cargo run --release -p phoenix-bench --bin servebench [-- --smoke]
//! ```
//!
//! Writes `results/BENCH_serve.json`. `--smoke` shrinks the request count
//! for CI while keeping 8 concurrent clients; `--clients N`/`--requests N`
//! override both.

use phoenix_bench::{or_exit, write_results, SEED};
use phoenix_mathkit::Xoshiro256;
use phoenix_serve::{Client, RetryPolicy};
use serde::Serialize;
use serde_json::Value;
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::Instant;

const SERVER_QUEUE: usize = 8;
const SERVER_WORKERS: usize = 4;
const MAX_FRAME_BYTES: usize = 4096;

#[derive(Default, Serialize)]
struct Tally {
    sent: u64,
    ok: u64,
    pong: u64,
    cancelled: u64,
    deadline_exceeded: u64,
    invalid_request: u64,
    frame_too_large: u64,
    overloaded_final: u64,
    compile_error: u64,
    other: u64,
}

impl Tally {
    fn answered(&self) -> u64 {
        self.ok
            + self.pong
            + self.cancelled
            + self.deadline_exceeded
            + self.invalid_request
            + self.frame_too_large
            + self.overloaded_final
            + self.compile_error
            + self.other
    }

    fn absorb(&mut self, other: Tally) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.pong += other.pong;
        self.cancelled += other.cancelled;
        self.deadline_exceeded += other.deadline_exceeded;
        self.invalid_request += other.invalid_request;
        self.frame_too_large += other.frame_too_large;
        self.overloaded_final += other.overloaded_final;
        self.compile_error += other.compile_error;
        self.other += other.other;
    }

    fn classify(&mut self, reply: &Value) {
        let status = reply.get("status").and_then(Value::as_str).unwrap_or("");
        let kind = reply.get("kind").and_then(Value::as_str).unwrap_or("");
        match (status, kind) {
            ("ok", _) => self.ok += 1,
            ("pong", _) => self.pong += 1,
            (_, "cancelled") => self.cancelled += 1,
            (_, "deadline_exceeded") => self.deadline_exceeded += 1,
            (_, "invalid_request") => self.invalid_request += 1,
            (_, "frame_too_large") => self.frame_too_large += 1,
            (_, "overloaded") => self.overloaded_final += 1,
            (_, "compile_error") => self.compile_error += 1,
            _ => self.other += 1,
        }
    }
}

#[derive(Serialize)]
struct BenchResult {
    clients: usize,
    requests_per_client: usize,
    replies: Tally,
    unanswered: u64,
    client_p99_latency_ms: u64,
    server_exit_ok: bool,
    server_report: Value,
}

fn compile_frame(id: u64, qubits: usize, n: usize, rng: &mut Xoshiro256) -> String {
    let mut terms = Vec::with_capacity(n);
    while terms.len() < n {
        let label: String = (0..qubits)
            .map(|_| ['I', 'X', 'Y', 'Z'][rng.next_below(4)])
            .collect();
        if label.bytes().all(|b| b == b'I') {
            continue;
        }
        terms.push(format!("[\"{label}\",{:.4}]", rng.next_f64() - 0.5));
    }
    format!(
        "{{\"op\":\"compile\",\"id\":{id},\"qubits\":{qubits},\"terms\":[{}],\"target\":\"cnot\"}}",
        terms.join(",")
    )
}

/// One client's worth of mixed traffic. Requests run sequentially so every
/// adversarial frame's reply can be read positionally.
fn drive_client(addr: &str, client_id: u64, requests: usize) -> (Tally, Vec<u64>) {
    let policy = RetryPolicy {
        seed: SEED ^ client_id,
        ..RetryPolicy::default()
    };
    let mut client = or_exit(
        Client::connect(addr, policy),
        &format!("client {client_id}: connect"),
    );
    let mut rng = Xoshiro256::seed_from_u64(SEED.wrapping_mul(31) ^ client_id);
    let mut tally = Tally::default();
    let mut latencies_ms = Vec::new();
    for i in 0..requests {
        let id = client_id * 10_000 + i as u64;
        tally.sent += 1;
        let roll = rng.next_below(100);
        let outcome: Result<Option<Value>, std::io::Error> = if roll < 10 {
            // Malformed frame: expect a line-numbered invalid_request.
            client
                .send_line("{definitely not json")
                .and_then(|()| client.recv_line())
                .map(|line| serde_json::from_str(&line).ok())
        } else if roll < 15 {
            // Oversized frame: expect frame_too_large, connection survives.
            client
                .send_line(&"z".repeat(2 * MAX_FRAME_BYTES))
                .and_then(|()| client.recv_line())
                .map(|line| serde_json::from_str(&line).ok())
        } else if roll < 25 {
            // Cancellation pair: a big job, abandoned right away. The reply
            // is `cancelled` (or `ok` if the compile won the race).
            client
                .send_line(&compile_frame(id, 8, 120, &mut rng))
                .and_then(|()| client.cancel(id))
                .and_then(|()| client.wait_reply(id))
                .map(Some)
        } else if roll < 30 {
            // Zero deadline: deterministically deadline_exceeded.
            let frame = format!(
                "{{\"op\":\"compile\",\"id\":{id},\"qubits\":3,\"terms\":[[\"ZZI\",0.5]],\"deadline_ms\":0}}"
            );
            client.request(id, &frame).map(Some)
        } else if roll < 35 {
            client.ping(id).map(Some)
        } else {
            // Valid compile through the retry/backoff path.
            let frame = compile_frame(id, 4 + rng.next_below(3), 8, &mut rng);
            let started = Instant::now();
            let reply = client.request(id, &frame);
            if reply.is_ok() {
                latencies_ms.push(started.elapsed().as_millis() as u64);
            }
            reply.map(Some)
        };
        match outcome {
            Ok(Some(reply)) => tally.classify(&reply),
            Ok(None) => tally.other += 1, // unparseable reply line
            Err(e) => or_exit::<(), _>(Err(e), &format!("client {client_id} request {i}")),
        }
    }
    (tally, latencies_ms)
}

fn spawn_server(report_path: &str) -> (Child, String) {
    let mut path = or_exit(std::env::current_exe(), "locating servebench binary");
    path.set_file_name("phoenixd");
    let mut child = or_exit(
        Command::new(&path)
            .args([
                "--tcp",
                "127.0.0.1:0",
                "--workers",
                &SERVER_WORKERS.to_string(),
                "--queue",
                &SERVER_QUEUE.to_string(),
                "--max-frame-bytes",
                &MAX_FRAME_BYTES.to_string(),
                "--report",
                report_path,
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn(),
        &format!(
            "spawning {} (build with `cargo build --bins` first)",
            path.display()
        ),
    );
    let stdout = or_exit(child.stdout.take().ok_or("not captured"), "phoenixd stdout");
    let mut lines = BufReader::new(stdout).lines();
    let banner = or_exit(
        lines
            .next()
            .transpose()
            .map_err(|e| e.to_string())
            .and_then(|l| l.ok_or_else(|| "exited before announcing its port".to_string())),
        "phoenixd banner",
    );
    let addr = or_exit(
        banner
            .strip_prefix("listening on ")
            .map(str::to_string)
            .ok_or_else(|| format!("unexpected line `{banner}`")),
        "phoenixd banner",
    );
    (child, addr)
}

fn sigterm(child: &Child) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    unsafe {
        kill(child.id() as i32, 15);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut clients: usize = 8;
    let mut requests: usize = 25;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => requests = 10,
            "--clients" => {
                clients = or_exit(
                    it.next()
                        .ok_or("needs a value".to_string())
                        .and_then(|v| v.parse().map_err(|e| format!("{e}"))),
                    "--clients",
                )
            }
            "--requests" => {
                requests = or_exit(
                    it.next()
                        .ok_or("needs a value".to_string())
                        .and_then(|v| v.parse().map_err(|e| format!("{e}"))),
                    "--requests",
                )
            }
            other => or_exit::<(), _>(Err("unknown flag"), other),
        }
    }

    let report_path =
        std::env::temp_dir().join(format!("phoenixd-report-{}.json", std::process::id()));
    let report_path_str = report_path.to_string_lossy().into_owned();
    let (mut child, addr) = spawn_server(&report_path_str);
    eprintln!("servebench: phoenixd on {addr}; {clients} clients x {requests} requests");

    let mut total = Tally::default();
    let mut latencies: Vec<u64> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let addr = addr.clone();
                scope.spawn(move || drive_client(&addr, c as u64 + 1, requests))
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok((tally, lat)) => {
                    total.absorb(tally);
                    latencies.extend(lat);
                }
                Err(_) => or_exit::<(), _>(Err("panicked"), "client thread"),
            }
        }
    });

    // The daemon must have survived everything the clients threw at it.
    let early_exit = or_exit(child.try_wait(), "polling phoenixd");
    if let Some(status) = early_exit {
        or_exit::<(), _>(Err(status), "phoenixd died during the run");
    }

    sigterm(&child);
    let status = or_exit(child.wait(), "waiting for phoenixd");
    let server_exit_ok = status.success();

    let server_report: Value = or_exit(
        std::fs::read_to_string(&report_path)
            .map_err(|e| e.to_string())
            .and_then(|text| {
                serde_json::from_str(text.trim()).map_err(|e| format!("bad JSON: {e}"))
            }),
        &format!("phoenixd report {report_path_str}"),
    );
    let _ = std::fs::remove_file(&report_path);

    latencies.sort_unstable();
    let client_p99_latency_ms = latencies
        .get(((latencies.len().saturating_sub(1)) as f64 * 0.99) as usize)
        .copied()
        .unwrap_or(0);

    let unanswered = total.sent - total.answered();
    let result = BenchResult {
        clients,
        requests_per_client: requests,
        unanswered,
        client_p99_latency_ms,
        server_exit_ok,
        server_report: server_report.clone(),
        replies: total,
    };
    write_results("BENCH_serve", &result);

    // Contract checks (fail the bench loudly, not silently).
    let mut failures = Vec::new();
    if !server_exit_ok {
        failures.push(format!("phoenixd exited uncleanly after SIGTERM: {status}"));
    }
    if unanswered != 0 {
        failures.push(format!("{unanswered} requests never got a typed reply"));
    }
    let admitted = server_report.get("admitted").and_then(Value::as_u64);
    let completed = server_report.get("completed").and_then(Value::as_u64);
    if admitted != completed {
        failures.push(format!(
            "drain left admitted != completed ({admitted:?} vs {completed:?})"
        ));
    }
    let p99_us = server_report
        .get("queue_wait_p99_us")
        .and_then(Value::as_u64)
        .unwrap_or(u64::MAX);
    if p99_us > 60_000_000 {
        failures.push(format!("p99 admission wait unbounded: {p99_us} us"));
    }
    if server_report.get("worker_deaths").and_then(Value::as_u64) != Some(0) {
        failures.push("workers died without sabotage".to_string());
    }
    let shed = server_report
        .get("shed")
        .and_then(Value::as_u64)
        .unwrap_or(0);
    eprintln!(
        "servebench: {} replies / {} sent; ok={} cancelled={} deadline={} invalid={} \
         oversized={} overloaded(final)={}; server shed={} p99 wait={}us",
        result.replies.answered(),
        result.replies.sent,
        result.replies.ok,
        result.replies.cancelled,
        result.replies.deadline_exceeded,
        result.replies.invalid_request,
        result.replies.frame_too_large,
        result.replies.overloaded_final,
        shed,
        p99_us,
    );
    if failures.is_empty() {
        eprintln!("servebench: all serving-contract checks passed");
    } else {
        or_exit::<(), _>(Err(failures.join("; ")), "serving contract");
    }
}
