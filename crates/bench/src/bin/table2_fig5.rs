//! Fig. 5 + Table II — logical-level compilation (all-to-all topology).
//!
//! Per benchmark: `#CNOT` and `Depth-2Q` for TKET-style, Paulihedral-style
//! (± O3), Tetris-style (± O3) and PHOENIX (± O3), as ratios of the
//! original circuit. Table II's geometric means close the report.
//!
//! "O3" is the workspace peephole pass standing in for Qiskit O2/O3; the
//! "no O3" variants lower structurally without it, mirroring the paper's
//! ablation of high-level-optimization strength.

use phoenix_bench::{
    geomean, phoenix_compiler, row, short_label, write_results, Metrics, Tracer, SEED,
};
use phoenix_circuit::peephole;

use phoenix_hamil::uccsd;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Entry {
    benchmark: String,
    original: Metrics,
    compilers: BTreeMap<String, Metrics>,
}

const COMPILERS: [&str; 7] = [
    "TKET",
    "Paulihedral",
    "Paulihedral+O3",
    "Tetris",
    "Tetris+O3",
    "PHOENIX",
    "PHOENIX+O3",
];

fn main() {
    let mut entries: Vec<Entry> = Vec::new();
    let mut tracer = Tracer::from_env("table2_fig5");
    let strategies = phoenix_baselines::strategies();
    for h in uccsd::table1_suite(SEED) {
        let n = h.num_qubits();
        let terms = h.terms();
        let mut original = None;
        let mut compilers = BTreeMap::new();
        for strategy in &strategies {
            let label = short_label(strategy.name());
            let logical = strategy.compile_logical(n, terms);
            match label {
                // The reference point every rate is measured against.
                "original" => original = Some(Metrics::of(&logical)),
                // TKET always carries its FullPeepholeOptimise analogue.
                "TKET" => {
                    compilers.insert(
                        label.to_string(),
                        Metrics::of(&peephole::optimize(&logical)),
                    );
                }
                _ => {
                    compilers.insert(label.to_string(), Metrics::of(&logical.lower_to_cnot()));
                    compilers.insert(
                        format!("{label}+O3"),
                        Metrics::of(&peephole::optimize(&logical)),
                    );
                }
            }
        }
        let original = original.expect("the strategy set includes the original circuit");
        tracer.record_logical(h.name(), &phoenix_compiler(), n, terms);
        eprintln!("[fig5] {} done", h.name());
        entries.push(Entry {
            benchmark: h.name().to_string(),
            original,
            compilers,
        });
    }

    println!("# Fig. 5: logical-level compilation (ratios vs original)\n");
    let mut header = vec!["Benchmark".to_string(), "orig #CNOT".to_string()];
    for c in COMPILERS {
        header.push(format!("{c} #CNOT%"));
        header.push(format!("{c} D2Q%"));
    }
    println!("{}", row(&header));
    println!("{}", row(&vec!["---".to_string(); header.len()]));
    for e in &entries {
        let mut cells = vec![e.benchmark.clone(), e.original.cnot.to_string()];
        for c in COMPILERS {
            let m = &e.compilers[c];
            cells.push(format!(
                "{:.1}",
                100.0 * m.cnot as f64 / e.original.cnot as f64
            ));
            cells.push(format!(
                "{:.1}",
                100.0 * m.depth_2q as f64 / e.original.depth_2q as f64
            ));
        }
        println!("{}", row(&cells));
    }

    println!("\n# Table II: average (geometric-mean) optimization rates\n");
    println!(
        "{}",
        row(&["Compiler", "#CNOT opt.", "Depth-2Q opt."].map(String::from))
    );
    println!("{}", row(&vec!["---".to_string(); 3]));
    let mut summary = BTreeMap::new();
    for c in COMPILERS {
        let cnot_ratios: Vec<f64> = entries
            .iter()
            .map(|e| e.compilers[c].cnot as f64 / e.original.cnot as f64)
            .collect();
        let depth_ratios: Vec<f64> = entries
            .iter()
            .map(|e| e.compilers[c].depth_2q as f64 / e.original.depth_2q as f64)
            .collect();
        let gc = geomean(&cnot_ratios);
        let gd = geomean(&depth_ratios);
        println!(
            "{}",
            row(&[
                c.to_string(),
                format!("{:.2}%", 100.0 * gc),
                format!("{:.2}%", 100.0 * gd)
            ])
        );
        summary.insert(c.to_string(), (gc, gd));
    }
    write_results("table2_fig5", &(entries, summary));
    tracer.finish();
}
