//! Fig. 6 — hardware-aware compilation on the heavy-hex topology.
//!
//! Per UCCSD benchmark: mapped `#CNOT` and `Depth-2Q` for Paulihedral-style,
//! Tetris-style and PHOENIX on the 65-qubit Manhattan-shaped heavy-hex
//! device (TKET is excluded as in the paper), plus each compiler's average
//! routing-overhead multiple (the dashed lines).

use phoenix_baselines::strategies;
use phoenix_bench::{
    geomean, phoenix_compiler, row, short_label, write_results, Metrics, Tracer, SEED,
};
use phoenix_core::CompilerStrategy;
use phoenix_hamil::uccsd;
use phoenix_topology::CouplingGraph;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct Entry {
    benchmark: String,
    compilers: BTreeMap<String, HwMetrics>,
}

#[derive(Serialize, Clone, Copy)]
struct HwMetrics {
    mapped: Metrics,
    logical_cnot: usize,
    swaps: usize,
    overhead: f64,
}

const COMPILERS: [&str; 3] = ["Paulihedral", "Tetris", "PHOENIX"];

fn main() {
    let device = CouplingGraph::manhattan65();
    let mut entries = Vec::new();
    let mut tracer = Tracer::from_env("fig6");
    // TKET is excluded as in the paper; compare the remaining strategies.
    let contenders: Vec<Box<dyn CompilerStrategy>> = strategies()
        .into_iter()
        .filter(|s| !matches!(s.name(), "original" | "TKET-style"))
        .collect();
    for h in uccsd::table1_suite(SEED) {
        let n = h.num_qubits();
        let mut compilers = BTreeMap::new();
        for strategy in &contenders {
            let hw = strategy.compile_hardware(n, h.terms(), &device);
            compilers.insert(
                short_label(strategy.name()).to_string(),
                HwMetrics {
                    mapped: Metrics::of(&hw.circuit),
                    logical_cnot: hw.logical.counts().cnot,
                    swaps: hw.num_swaps,
                    overhead: hw.routing_overhead(),
                },
            );
        }
        tracer.record_hardware(h.name(), &phoenix_compiler(), n, h.terms(), &device);
        eprintln!("[fig6] {} done", h.name());
        entries.push(Entry {
            benchmark: h.name().to_string(),
            compilers,
        });
    }

    println!("# Fig. 6: hardware-aware compilation (heavy-hex 65q)\n");
    let mut header = vec!["Benchmark".to_string()];
    for c in COMPILERS {
        header.push(format!("{c} #CNOT"));
        header.push(format!("{c} D2Q"));
        header.push(format!("{c} ovh"));
    }
    println!("{}", row(&header));
    println!("{}", row(&vec!["---".to_string(); header.len()]));
    for e in &entries {
        let mut cells = vec![e.benchmark.clone()];
        for c in COMPILERS {
            let m = &e.compilers[c];
            cells.push(m.mapped.cnot.to_string());
            cells.push(m.mapped.depth_2q.to_string());
            cells.push(format!("{:.2}x", m.overhead));
        }
        println!("{}", row(&cells));
    }

    println!("\n## Averages (geomean)\n");
    let mut summary = BTreeMap::new();
    for c in COMPILERS {
        let cnot = geomean(
            &entries
                .iter()
                .map(|e| e.compilers[c].mapped.cnot as f64)
                .collect::<Vec<_>>(),
        );
        let depth = geomean(
            &entries
                .iter()
                .map(|e| e.compilers[c].mapped.depth_2q as f64)
                .collect::<Vec<_>>(),
        );
        let ovh = geomean(
            &entries
                .iter()
                .map(|e| e.compilers[c].overhead)
                .collect::<Vec<_>>(),
        );
        println!("- {c}: #CNOT {cnot:.0}, Depth-2Q {depth:.0}, routing multiple {ovh:.2}x");
        summary.insert(c.to_string(), (cnot, depth, ovh));
    }
    for base in ["Paulihedral", "Tetris"] {
        let rc = summary["PHOENIX"].0 / summary[base].0;
        let rd = summary["PHOENIX"].1 / summary[base].1;
        println!(
            "- PHOENIX vs {base}: #CNOT reduced by {:.2}%, Depth-2Q by {:.2}%",
            100.0 * (1.0 - rc),
            100.0 * (1.0 - rd)
        );
    }
    write_results("fig6", &(entries, summary));
    tracer.finish();
}
