//! `phoenixd` — the long-running PHOENIX compile server.
//!
//! Speaks the line-delimited JSON protocol over TCP (`--tcp ADDR`) or
//! stdin/stdout (`--stdio`, the default). SIGTERM/SIGINT and stdin EOF all
//! initiate the same graceful drain: admissions stop, in-flight work
//! completes, replies flush, and the final observability report is printed
//! to stderr (and `--report FILE` as JSON).
//!
//! ```text
//! phoenixd --tcp 127.0.0.1:0 --workers 4 --queue 16 --report serve.json
//! ```
//!
//! With `--tcp` and port 0 the chosen port is announced on stdout as
//! `listening on ADDR`, so harnesses can spawn the daemon on an ephemeral
//! port and parse the line.

use std::net::TcpListener;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use phoenix_serve::{Server, ServerConfig, ServerHandle};

/// Set by the signal handler; polled by the shutdown monitor thread.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::Relaxed);
}

/// Installs `on_signal` for SIGINT (2) and SIGTERM (15) via `signal(2)` —
/// the only libc surface needed, avoiding a signal-handling dependency.
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2, on_signal);
        signal(15, on_signal);
    }
}

/// Bridges the signal flag to a graceful drain.
fn spawn_shutdown_monitor(handle: ServerHandle) {
    std::thread::spawn(move || loop {
        if SHUTDOWN.load(Ordering::Relaxed) {
            eprintln!("phoenixd: shutdown signal received; draining");
            handle.shutdown();
            return;
        }
        if handle.is_draining() {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });
}

struct Args {
    tcp: Option<String>,
    config: ServerConfig,
    report_path: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: phoenixd [--stdio | --tcp ADDR] [--workers N] [--queue N] [--cache N]\n\
         \x20               [--max-frame-bytes N] [--default-deadline-ms N] [--report FILE]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        tcp: None,
        config: ServerConfig::default(),
        report_path: None,
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("phoenixd: {name} requires a value");
                usage()
            })
        };
        match arg.as_str() {
            "--stdio" => args.tcp = None,
            "--tcp" => args.tcp = Some(value("--tcp")),
            "--workers" => args.config.workers = parse_num(&value("--workers"), "--workers"),
            "--queue" => {
                args.config.queue_capacity = parse_num(&value("--queue"), "--queue");
            }
            "--cache" => args.config.cache_capacity = parse_num(&value("--cache"), "--cache"),
            "--max-frame-bytes" => {
                args.config.max_frame_bytes =
                    parse_num(&value("--max-frame-bytes"), "--max-frame-bytes");
            }
            "--default-deadline-ms" => {
                let ms: u64 = parse_num(&value("--default-deadline-ms"), "--default-deadline-ms");
                args.config.default_deadline = Some(Duration::from_millis(ms));
            }
            "--report" => args.report_path = Some(value("--report")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("phoenixd: unknown flag `{other}`");
                usage()
            }
        }
    }
    args
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("phoenixd: invalid value `{s}` for {flag}");
        usage()
    })
}

fn main() -> ExitCode {
    let args = parse_args();
    install_signal_handlers();
    let server = Server::new(args.config);
    spawn_shutdown_monitor(server.handle());
    let report = match &args.tcp {
        Some(addr) => {
            let listener = match TcpListener::bind(addr) {
                Ok(l) => l,
                Err(e) => {
                    eprintln!("phoenixd: cannot bind {addr}: {e}");
                    return ExitCode::from(1);
                }
            };
            match listener.local_addr() {
                Ok(local) => println!("listening on {local}"),
                Err(_) => println!("listening on {addr}"),
            }
            server.run_tcp(listener)
        }
        None => server.run_stdio(),
    };
    eprintln!("{}", report.render());
    if let Some(path) = &args.report_path {
        let json = phoenix_serve::protocol::render(&report.to_json());
        if let Err(e) = std::fs::write(path, json + "\n") {
            eprintln!("phoenixd: cannot write report {path}: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
