//! A blocking `phoenixd` client with retry, exponential backoff, and
//! jitter.
//!
//! The client owns one TCP connection and resolves replies by request id,
//! so callers can pipeline frames and collect answers out of order. Two
//! failure classes are retried transparently, up to
//! [`RetryPolicy::max_retries`] times each:
//!
//! - **transport errors** (refused connection, reset, EOF) — the client
//!   reconnects and resends the frame;
//! - **`overloaded` replies** — the client backs off for the server's
//!   `retry_after_ms` hint plus jittered exponential delay, then resends.
//!
//! Jitter is deterministic per client (seeded [`Xoshiro256`]), keeping
//! bench runs reproducible while still decorrelating concurrent clients
//! seeded differently.

use std::collections::VecDeque;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use phoenix_mathkit::Xoshiro256;
use serde_json::Value;

/// Backoff/retry tuning for a [`Client`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries per failure class before giving up (0 = fail fast).
    pub max_retries: u32,
    /// First backoff delay; doubles each retry.
    pub base_delay: Duration,
    /// Ceiling on the exponential component.
    pub max_delay: Duration,
    /// Jitter seed; give each concurrent client its own.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 5,
            base_delay: Duration::from_millis(25),
            max_delay: Duration::from_secs(2),
            seed: 7,
        }
    }
}

/// A blocking client for one `phoenixd` connection.
pub struct Client {
    addr: String,
    policy: RetryPolicy,
    rng: Xoshiro256,
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    /// Replies read while waiting for a different id.
    pending: VecDeque<Value>,
}

impl Client {
    /// Connects to `addr`, retrying refused connections per `policy`.
    pub fn connect(addr: &str, policy: RetryPolicy) -> io::Result<Client> {
        let mut rng = Xoshiro256::seed_from_u64(policy.seed);
        let mut last_err = None;
        for attempt in 0..=policy.max_retries {
            match Self::open(addr) {
                Ok((writer, reader)) => {
                    return Ok(Client {
                        addr: addr.to_string(),
                        policy,
                        rng,
                        writer,
                        reader,
                        pending: VecDeque::new(),
                    });
                }
                Err(e) => {
                    last_err = Some(e);
                    std::thread::sleep(backoff(&policy, &mut rng, attempt, None));
                }
            }
        }
        Err(last_err.unwrap_or_else(|| io::Error::other("connect failed")))
    }

    fn open(addr: &str) -> io::Result<(TcpStream, BufReader<TcpStream>)> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok((stream, reader))
    }

    fn reconnect(&mut self) -> io::Result<()> {
        let (writer, reader) = Self::open(&self.addr)?;
        self.writer = writer;
        self.reader = reader;
        // Replies in flight on the old connection are gone for good.
        self.pending.clear();
        Ok(())
    }

    /// Sends `frame` (one line, no trailing newline) and blocks for the
    /// reply whose `id` matches, retrying through transport failures and
    /// `overloaded` shedding. Cancelling acknowledgments are skipped; other
    /// ids are buffered for later [`Client::wait_reply`] calls.
    pub fn request(&mut self, id: u64, frame: &str) -> io::Result<Value> {
        let mut overload_retries = 0;
        let mut transport_retries = 0;
        loop {
            if let Err(e) = self.send_line(frame) {
                transport_retries += 1;
                if transport_retries > self.policy.max_retries {
                    return Err(e);
                }
                let delay = backoff(&self.policy, &mut self.rng, transport_retries, None);
                std::thread::sleep(delay);
                self.reconnect()?;
                continue;
            }
            match self.wait_reply(id) {
                Ok(reply) => {
                    let overloaded =
                        reply.get("kind").and_then(Value::as_str) == Some("overloaded");
                    if !overloaded {
                        return Ok(reply);
                    }
                    overload_retries += 1;
                    if overload_retries > self.policy.max_retries {
                        return Ok(reply); // surface the shed to the caller
                    }
                    let hint = reply
                        .get("retry_after_ms")
                        .and_then(Value::as_u64)
                        .map(Duration::from_millis);
                    let delay = backoff(&self.policy, &mut self.rng, overload_retries, hint);
                    std::thread::sleep(delay);
                }
                Err(e) => {
                    transport_retries += 1;
                    if transport_retries > self.policy.max_retries {
                        return Err(e);
                    }
                    let delay = backoff(&self.policy, &mut self.rng, transport_retries, None);
                    std::thread::sleep(delay);
                    self.reconnect()?;
                }
            }
        }
    }

    /// Blocks for the reply with this `id` (skipping `cancelling` acks),
    /// buffering replies for other ids.
    pub fn wait_reply(&mut self, id: u64) -> io::Result<Value> {
        if let Some(pos) = self.pending.iter().position(|v| matches_final(v, id)) {
            return Ok(self.pending.remove(pos).unwrap_or(Value::Null));
        }
        loop {
            let line = self.recv_line()?;
            let Ok(value) = serde_json::from_str::<Value>(&line) else {
                continue; // a server never sends malformed frames; skip defensively
            };
            if matches_final(&value, id) {
                return Ok(value);
            }
            if value.get("status").and_then(Value::as_str) != Some("cancelling") {
                self.pending.push_back(value);
            }
        }
    }

    /// Fires a cancel for an in-flight request id (the `cancelling` ack is
    /// consumed by the next [`Client::wait_reply`]).
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.send_line(&format!("{{\"cancel\":{id}}}"))
    }

    /// Round-trips a liveness probe.
    pub fn ping(&mut self, id: u64) -> io::Result<Value> {
        self.request(id, &format!("{{\"op\":\"ping\",\"id\":{id}}}"))
    }

    /// Writes raw bytes to the socket — no framing, no newline. For
    /// adversarial tests (torn frames, oversized payloads).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }

    /// Writes one frame line (appends the newline).
    pub fn send_line(&mut self, frame: &str) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(frame.len() + 1);
        bytes.extend_from_slice(frame.as_bytes());
        bytes.push(b'\n');
        self.writer.write_all(&bytes)?;
        self.writer.flush()
    }

    /// Reads one reply line (newline stripped). EOF is an error.
    pub fn recv_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

/// A final reply for `id`: matching id, and not the `cancelling` ack frame
/// (which precedes the real `cancelled` reply).
fn matches_final(value: &Value, id: u64) -> bool {
    value.get("id").and_then(Value::as_u64) == Some(id)
        && value.get("status").and_then(Value::as_str) != Some("cancelling")
}

/// Jittered exponential backoff: `min(max, base·2^attempt)` scaled by a
/// uniform factor in `[0.5, 1.0)`, plus the server's explicit hint.
fn backoff(
    policy: &RetryPolicy,
    rng: &mut Xoshiro256,
    attempt: u32,
    hint: Option<Duration>,
) -> Duration {
    let exp = policy
        .base_delay
        .saturating_mul(1u32 << attempt.min(16))
        .min(policy.max_delay);
    let jitter = 0.5 + 0.5 * rng.next_f64();
    exp.mul_f64(jitter) + hint.unwrap_or(Duration::ZERO)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_respects_the_ceiling() {
        let policy = RetryPolicy::default();
        let mut rng = Xoshiro256::seed_from_u64(1);
        let early = backoff(&policy, &mut rng, 0, None);
        assert!(early >= policy.base_delay / 2);
        assert!(early < policy.base_delay);
        let late = backoff(&policy, &mut rng, 30, None);
        assert!(late <= policy.max_delay);
    }

    #[test]
    fn backoff_adds_the_server_hint() {
        let policy = RetryPolicy {
            base_delay: Duration::from_millis(1),
            ..RetryPolicy::default()
        };
        let mut rng = Xoshiro256::seed_from_u64(2);
        let with_hint = backoff(&policy, &mut rng, 0, Some(Duration::from_millis(500)));
        assert!(with_hint >= Duration::from_millis(500));
    }

    #[test]
    fn final_reply_matching_skips_cancelling_acks() {
        let ack: Value = serde_json::from_str(r#"{"id":3,"status":"cancelling"}"#).unwrap();
        let real: Value =
            serde_json::from_str(r#"{"id":3,"status":"error","kind":"cancelled"}"#).unwrap();
        assert!(!matches_final(&ack, 3));
        assert!(matches_final(&real, 3));
        assert!(!matches_final(&real, 4));
    }
}
