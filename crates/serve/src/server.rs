//! The `phoenixd` server: bounded worker pool, admission control, deadline
//! watchdog, cancellation registry, panic isolation, and graceful drain.
//!
//! Concurrency model (no async runtime — `std::net` + scoped threads,
//! following the pipeline's own deterministic `std::thread::scope` idiom):
//!
//! - the **accept loop** runs on the caller's thread, polling a
//!   non-blocking listener so it can observe the drain flag;
//! - each **connection** gets a reader thread (frame assembly with a hard
//!   size bound, strict parsing, idle reaping) and a writer thread (reply
//!   serialization behind a write timeout, so one slow client never blocks
//!   a worker);
//! - a fixed pool of **worker supervisors** each run a worker loop inside
//!   `catch_unwind`: a worker that dies is logged, counted, its request
//!   answered with a typed `panic` reply, and the loop re-entered — the
//!   process lives;
//! - a **watchdog** thread fires each request's [`CancelToken`] once its
//!   wall-clock deadline passes, aborting the compile at the next pass
//!   boundary even when the `pass_budget` mapping alone would not stop it.
//!
//! Admission is a bounded queue: when full, requests are *shed* with a
//! typed `overloaded` reply carrying a `retry_after_ms` estimate — never
//! queued unboundedly, never silently dropped. Shutdown (SIGTERM handler or
//! [`ServerHandle::shutdown`]) stops admissions with `shutting_down`
//! replies, drains every admitted job, flushes every reply, and returns a
//! final [`ServeReport`].

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use phoenix_core::phoenix_cache::{CacheStats, CompileCache};
use phoenix_core::CancelToken;
use serde_json::Value;

use crate::protocol::{
    self, cancelling_reply, error_reply, parse_request, pong_reply, render, CompileSpec, ErrorKind,
    FleetSpec, Request, DEFAULT_MAX_FRAME_BYTES,
};

/// Tuning knobs for a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads compiling admitted requests.
    pub workers: usize,
    /// Admission queue bound; requests beyond it are shed with
    /// `overloaded`.
    pub queue_capacity: usize,
    /// Per-frame size bound; larger frames are rejected with
    /// `frame_too_large`.
    pub max_frame_bytes: usize,
    /// Capacity of the shared compile cache (entries per map).
    pub cache_capacity: usize,
    /// How long a reply write may block before the client is declared slow
    /// and its connection dropped.
    pub write_timeout: Duration,
    /// How long a connection may sit idle (no frames, nothing in flight)
    /// before being reaped.
    pub idle_timeout: Duration,
    /// Deadline applied to requests that do not carry their own
    /// `deadline_ms`.
    pub default_deadline: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_capacity: 16,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            cache_capacity: 256,
            write_timeout: Duration::from_secs(2),
            idle_timeout: Duration::from_secs(30),
            default_deadline: None,
        }
    }
}

/// Poll interval for the accept loop, blocked readers, and queue waits:
/// every blocking point observes the drain flag at least this often.
const POLL: Duration = Duration::from_millis(50);

/// Watchdog scan interval: the resolution of wall-clock deadlines.
const WATCHDOG_TICK: Duration = Duration::from_millis(5);

#[derive(Debug, Default)]
struct Counters {
    admitted: AtomicU64,
    completed: AtomicU64,
    shed: AtomicU64,
    cancelled: AtomicU64,
    deadline_exceeded: AtomicU64,
    panics_contained: AtomicU64,
    worker_deaths: AtomicU64,
    invalid_frames: AtomicU64,
    oversized_frames: AtomicU64,
    slow_client_drops: AtomicU64,
    reaped_connections: AtomicU64,
}

impl Counters {
    fn bump(field: &AtomicU64) -> u64 {
        field.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// The work payload of an admitted job: a single-device compile or a
/// fleet compile. Admission control, deadlines, cancellation, and panic
/// containment treat both identically.
enum JobSpec {
    Compile(CompileSpec),
    Fleet(FleetSpec),
}

impl JobSpec {
    fn id(&self) -> u64 {
        match self {
            JobSpec::Compile(s) => s.id,
            JobSpec::Fleet(s) => s.id,
        }
    }

    fn deadline_ms(&self) -> Option<u64> {
        match self {
            JobSpec::Compile(s) => s.deadline_ms,
            JobSpec::Fleet(s) => s.deadline_ms,
        }
    }

    fn execute(
        &self,
        cache: &Arc<CompileCache>,
        cancel: CancelToken,
        budget: Option<Duration>,
    ) -> Value {
        match self {
            JobSpec::Compile(s) => crate::execute_spec(s, Some(cache), Some(cancel), budget),
            JobSpec::Fleet(s) => crate::execute_fleet_spec(s, Some(cache), Some(cancel), budget),
        }
    }
}

/// An admitted compile job, queued for a worker.
struct Job {
    conn: u64,
    spec: JobSpec,
    token: CancelToken,
    deadline: Option<Instant>,
    enqueued: Instant,
    reply: Sender<String>,
}

/// What the cancellation registry knows about an in-flight request.
struct InFlight {
    token: CancelToken,
    deadline: Option<Instant>,
}

/// What a worker supervisor needs to answer for a job whose worker died.
struct JobMeta {
    conn: u64,
    id: u64,
    reply: Sender<String>,
}

struct ServerState {
    config: ServerConfig,
    cache: Arc<CompileCache>,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// `(connection, request id)` → cancellation handle, for every admitted
    /// job that has not yet been answered.
    registry: Mutex<HashMap<(u64, u64), InFlight>>,
    counters: Counters,
    /// Microseconds each admitted job waited in the queue (admission →
    /// worker pickup), for the report's percentiles. Bounded.
    queue_waits_us: Mutex<Vec<u64>>,
    /// EWMA of job execution time in microseconds, for `retry_after_ms`.
    avg_job_us: AtomicU64,
    draining: AtomicBool,
}

/// Cap on retained queue-wait samples (~800 KiB); enough for any bench run.
const MAX_WAIT_SAMPLES: usize = 100_000;

impl ServerState {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }

    fn shutdown(&self) {
        self.draining.store(true, Ordering::Relaxed);
        self.queue_cv.notify_all();
    }

    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn lock_registry(&self) -> std::sync::MutexGuard<'_, HashMap<(u64, u64), InFlight>> {
        self.registry.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn record_wait(&self, us: u64) {
        let mut waits = self
            .queue_waits_us
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if waits.len() < MAX_WAIT_SAMPLES {
            waits.push(us);
        }
    }

    /// Backoff hint for a shed request: the queue's expected drain time at
    /// the current average job cost, clamped to a sane band.
    fn retry_after_ms(&self, queue_len: usize) -> u64 {
        let avg_us = self.avg_job_us.load(Ordering::Relaxed).max(1_000);
        let workers = self.config.workers.max(1) as u64;
        let est = (queue_len as u64 + 1) * avg_us / workers / 1_000;
        est.clamp(10, 10_000)
    }

    fn observe_job_time(&self, elapsed: Duration) {
        let us = (elapsed.as_micros() as u64).max(1);
        let old = self.avg_job_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { (3 * old + us) / 4 };
        self.avg_job_us.store(new, Ordering::Relaxed);
    }
}

/// The final observability report a drained server returns: every serve
/// counter, admission-latency percentiles, and the shared cache's stats.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Admitted requests answered (any status).
    pub completed: u64,
    /// Requests shed with `overloaded`.
    pub shed: u64,
    /// Requests answered `cancelled`.
    pub cancelled: u64,
    /// Requests answered `deadline_exceeded`.
    pub deadline_exceeded: u64,
    /// Worker panics contained (process lived).
    pub panics_contained: u64,
    /// Workers respawned after dying.
    pub worker_deaths: u64,
    /// Frames rejected as malformed/unknown-field/ill-typed.
    pub invalid_frames: u64,
    /// Frames rejected for exceeding the size bound.
    pub oversized_frames: u64,
    /// Connections dropped for blocking reply writes too long.
    pub slow_client_drops: u64,
    /// Idle half-open connections reaped.
    pub reaped_connections: u64,
    /// Median queue wait (admission → worker pickup), microseconds.
    pub queue_wait_p50_us: u64,
    /// 99th-percentile queue wait, microseconds.
    pub queue_wait_p99_us: u64,
    /// Shared compile-cache statistics.
    pub cache: CacheStats,
}

impl ServeReport {
    /// The report as a JSON object (the shape written to `--report` files
    /// and `results/BENCH_serve.json`).
    pub fn to_json(&self) -> Value {
        protocol::obj(vec![
            ("admitted", Value::Int(self.admitted as i64)),
            ("completed", Value::Int(self.completed as i64)),
            ("shed", Value::Int(self.shed as i64)),
            ("cancelled", Value::Int(self.cancelled as i64)),
            (
                "deadline_exceeded",
                Value::Int(self.deadline_exceeded as i64),
            ),
            ("panics_contained", Value::Int(self.panics_contained as i64)),
            ("worker_deaths", Value::Int(self.worker_deaths as i64)),
            ("invalid_frames", Value::Int(self.invalid_frames as i64)),
            ("oversized_frames", Value::Int(self.oversized_frames as i64)),
            (
                "slow_client_drops",
                Value::Int(self.slow_client_drops as i64),
            ),
            (
                "reaped_connections",
                Value::Int(self.reaped_connections as i64),
            ),
            (
                "queue_wait_p50_us",
                Value::Int(self.queue_wait_p50_us as i64),
            ),
            (
                "queue_wait_p99_us",
                Value::Int(self.queue_wait_p99_us as i64),
            ),
            ("cache", protocol::cache_stats_value(&self.cache)),
        ])
    }

    /// Human-readable one-per-line rendering (flushed to stderr on drain).
    pub fn render(&self) -> String {
        format!(
            "serve report\n  admitted              {}\n  completed             {}\n  \
             shed (overloaded)     {}\n  cancelled             {}\n  deadline exceeded     {}\n  \
             panics contained      {}\n  worker deaths         {}\n  invalid frames        {}\n  \
             oversized frames      {}\n  slow-client drops     {}\n  reaped connections    {}\n  \
             queue wait p50        {} us\n  queue wait p99        {} us\n  \
             cache hit rate        {:.2} (program) / {:.2} (group), {} evictions",
            self.admitted,
            self.completed,
            self.shed,
            self.cancelled,
            self.deadline_exceeded,
            self.panics_contained,
            self.worker_deaths,
            self.invalid_frames,
            self.oversized_frames,
            self.slow_client_drops,
            self.reaped_connections,
            self.queue_wait_p50_us,
            self.queue_wait_p99_us,
            self.cache.program_hit_rate(),
            self.cache.group_hit_rate(),
            self.cache.evictions,
        )
    }
}

/// A shutdown/introspection handle, cloneable across threads (hand one to
/// a signal handler or a test driver).
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<ServerState>,
}

impl ServerHandle {
    /// Initiates graceful drain: admissions stop (new compile frames get
    /// `shutting_down`), queued and in-flight jobs complete, replies flush,
    /// then the serving call returns its final report.
    pub fn shutdown(&self) {
        self.state.shutdown();
    }

    /// Whether drain has been initiated.
    pub fn is_draining(&self) -> bool {
        self.state.draining()
    }
}

/// The compile server. Construct with a [`ServerConfig`], then block on
/// [`Server::run_tcp`] or [`Server::run_stdio`]; both return the final
/// [`ServeReport`] after a graceful drain.
pub struct Server {
    state: Arc<ServerState>,
}

impl Server {
    /// A server with the given configuration and a fresh bounded cache.
    pub fn new(config: ServerConfig) -> Self {
        let cache = Arc::new(CompileCache::with_capacity(config.cache_capacity));
        Server {
            state: Arc::new(ServerState {
                config,
                cache,
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                registry: Mutex::new(HashMap::new()),
                counters: Counters::default(),
                queue_waits_us: Mutex::new(Vec::new()),
                avg_job_us: AtomicU64::new(0),
                draining: AtomicBool::new(false),
            }),
        }
    }

    /// A handle for initiating shutdown from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// The process-wide compile cache mounted across all workers.
    pub fn cache(&self) -> &Arc<CompileCache> {
        &self.state.cache
    }

    /// Serves TCP connections on `listener` until shutdown, then drains and
    /// returns the final report.
    pub fn run_tcp(&self, listener: TcpListener) -> ServeReport {
        let state = &*self.state;
        if listener.set_nonblocking(true).is_err() {
            state.shutdown();
        }
        std::thread::scope(|scope| {
            for slot in 0..state.config.workers.max(1) {
                scope.spawn(move || supervise_worker(state, slot));
            }
            scope.spawn(move || watchdog(state));
            let mut next_conn: u64 = 0;
            while !state.draining() {
                match listener.accept() {
                    Ok((stream, _)) => {
                        next_conn += 1;
                        let conn = next_conn;
                        scope.spawn(move || serve_connection(state, stream, conn));
                    }
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        std::thread::sleep(POLL);
                    }
                    Err(_) => std::thread::sleep(POLL),
                }
            }
            // Drain: wake anything parked on the queue so workers can
            // observe the flag and exit once the queue is empty.
            state.queue_cv.notify_all();
        });
        self.report()
    }

    /// Serves line-delimited requests from stdin (replies to stdout) until
    /// EOF or shutdown, then drains and returns the final report. EOF on
    /// stdin initiates the same graceful drain as SIGTERM.
    pub fn run_stdio(&self) -> ServeReport {
        let state = &*self.state;
        // stdin reads cannot be timed out portably, so a detached thread
        // owns the blocking reads and forwards lines over a channel; it
        // dies with the process if still blocked at exit.
        let (line_tx, line_rx) = mpsc::channel::<String>();
        std::thread::spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let Ok(line) = line else { break };
                if line_tx.send(line).is_err() {
                    break;
                }
            }
        });
        std::thread::scope(|scope| {
            for slot in 0..state.config.workers.max(1) {
                scope.spawn(move || supervise_worker(state, slot));
            }
            scope.spawn(move || watchdog(state));
            let (reply_tx, reply_rx) = mpsc::channel::<String>();
            scope.spawn(move || {
                let mut out = std::io::stdout().lock();
                for line in reply_rx {
                    let _ = writeln!(out, "{line}");
                    let _ = out.flush();
                }
            });
            let mut line_no: u64 = 0;
            while !state.draining() {
                match line_rx.recv_timeout(POLL) {
                    Ok(line) => {
                        line_no += 1;
                        if line.len() > state.config.max_frame_bytes {
                            Counters::bump(&state.counters.oversized_frames);
                            send(&reply_tx, oversized_reply(line_no));
                            continue;
                        }
                        handle_frame(state, 0, &line, line_no, &reply_tx);
                    }
                    Err(RecvTimeoutError::Timeout) => continue,
                    Err(RecvTimeoutError::Disconnected) => {
                        state.shutdown();
                    }
                }
            }
            state.queue_cv.notify_all();
            // `reply_tx` drops here; the printer exits once the workers
            // have flushed the replies for every admitted job.
        });
        self.report()
    }

    /// Snapshot the counters and cache statistics (the final report when
    /// called after a drain).
    pub fn report(&self) -> ServeReport {
        let s = &self.state;
        let c = &s.counters;
        let mut waits = s
            .queue_waits_us
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone();
        waits.sort_unstable();
        let pct = |p: f64| -> u64 {
            if waits.is_empty() {
                0
            } else {
                let idx = ((waits.len() as f64 - 1.0) * p).round() as usize;
                waits[idx.min(waits.len() - 1)]
            }
        };
        ServeReport {
            admitted: c.admitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            shed: c.shed.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            deadline_exceeded: c.deadline_exceeded.load(Ordering::Relaxed),
            panics_contained: c.panics_contained.load(Ordering::Relaxed),
            worker_deaths: c.worker_deaths.load(Ordering::Relaxed),
            invalid_frames: c.invalid_frames.load(Ordering::Relaxed),
            oversized_frames: c.oversized_frames.load(Ordering::Relaxed),
            slow_client_drops: c.slow_client_drops.load(Ordering::Relaxed),
            reaped_connections: c.reaped_connections.load(Ordering::Relaxed),
            queue_wait_p50_us: pct(0.50),
            queue_wait_p99_us: pct(0.99),
            cache: s.cache.stats(),
        }
    }
}

fn send(tx: &Sender<String>, reply: Value) {
    let _ = tx.send(render(&reply));
}

fn oversized_reply(line_no: u64) -> Value {
    error_reply(
        None,
        ErrorKind::FrameTooLarge,
        "frame exceeds the size bound",
        Some(line_no),
        None,
    )
}

/// Routes one parsed frame: answer protocol probes inline, register and
/// enqueue compiles, resolve cancels against the registry.
fn handle_frame(state: &ServerState, conn: u64, frame: &str, line_no: u64, tx: &Sender<String>) {
    if frame.trim().is_empty() {
        return;
    }
    let request = match parse_request(frame, line_no) {
        Ok(request) => request,
        Err(reply) => {
            Counters::bump(&state.counters.invalid_frames);
            send(tx, reply);
            return;
        }
    };
    match request {
        Request::Ping { id } => send(tx, pong_reply(id)),
        Request::Stats { id } => send(tx, stats_reply(state, id)),
        Request::Cancel { id } => {
            let found = state
                .lock_registry()
                .get(&(conn, id))
                .map(|entry| entry.token.cancel())
                .is_some();
            if found {
                send(tx, cancelling_reply(id));
            } else {
                send(
                    tx,
                    error_reply(
                        Some(id),
                        ErrorKind::NotFound,
                        "no in-flight request with this id on this connection",
                        Some(line_no),
                        None,
                    ),
                );
            }
        }
        Request::Compile(spec) => admit(state, conn, JobSpec::Compile(spec), tx),
        Request::Fleet(spec) => admit(state, conn, JobSpec::Fleet(spec), tx),
    }
}

fn stats_reply(state: &ServerState, id: u64) -> Value {
    let c = &state.counters;
    protocol::obj(vec![
        ("id", Value::Int(id as i64)),
        ("status", Value::Str("stats".to_string())),
        (
            "admitted",
            Value::Int(c.admitted.load(Ordering::Relaxed) as i64),
        ),
        (
            "completed",
            Value::Int(c.completed.load(Ordering::Relaxed) as i64),
        ),
        ("shed", Value::Int(c.shed.load(Ordering::Relaxed) as i64)),
        ("queue_depth", Value::Int(state.lock_queue().len() as i64)),
        ("cache", protocol::cache_stats_value(&state.cache.stats())),
    ])
}

/// Admission control: reject during drain, shed when the queue is full,
/// otherwise register the cancel token and enqueue.
fn admit(state: &ServerState, conn: u64, spec: JobSpec, tx: &Sender<String>) {
    if state.draining() {
        send(
            tx,
            error_reply(
                Some(spec.id()),
                ErrorKind::ShuttingDown,
                "server is draining; no new work admitted",
                None,
                None,
            ),
        );
        return;
    }
    let now = Instant::now();
    let deadline = spec
        .deadline_ms()
        .map(Duration::from_millis)
        .or(state.config.default_deadline)
        .map(|d| now + d);
    let token = CancelToken::new();
    {
        let mut queue = state.lock_queue();
        if queue.len() >= state.config.queue_capacity {
            let hint = state.retry_after_ms(queue.len());
            drop(queue);
            Counters::bump(&state.counters.shed);
            send(
                tx,
                error_reply(
                    Some(spec.id()),
                    ErrorKind::Overloaded,
                    "admission queue full; backing off",
                    None,
                    Some(hint),
                ),
            );
            return;
        }
        state.lock_registry().insert(
            (conn, spec.id()),
            InFlight {
                token: token.clone(),
                deadline,
            },
        );
        queue.push_back(Job {
            conn,
            spec,
            token,
            deadline,
            enqueued: now,
            reply: tx.clone(),
        });
        Counters::bump(&state.counters.admitted);
    }
    state.queue_cv.notify_one();
}

/// Blocks until a job is available; `None` once draining and empty.
fn pop_job(state: &ServerState) -> Option<Job> {
    let mut queue = state.lock_queue();
    loop {
        if let Some(job) = queue.pop_front() {
            return Some(job);
        }
        if state.draining() {
            return None;
        }
        let (guard, _) = state
            .queue_cv
            .wait_timeout(queue, POLL)
            .unwrap_or_else(|e| e.into_inner());
        queue = guard;
    }
}

/// One worker slot: re-enter the worker loop every time it dies, answering
/// the fatal job with a typed `panic` reply first. The process survives
/// any per-request panic.
fn supervise_worker(state: &ServerState, slot: usize) {
    let current: Mutex<Option<JobMeta>> = Mutex::new(None);
    loop {
        let outcome = panic::catch_unwind(AssertUnwindSafe(|| worker_loop(state, &current)));
        match outcome {
            Ok(()) => break,
            Err(_) => {
                Counters::bump(&state.counters.worker_deaths);
                Counters::bump(&state.counters.panics_contained);
                let fatal = current.lock().unwrap_or_else(|e| e.into_inner()).take();
                if let Some(meta) = fatal {
                    state.lock_registry().remove(&(meta.conn, meta.id));
                    Counters::bump(&state.counters.completed);
                    send(
                        &meta.reply,
                        error_reply(
                            Some(meta.id),
                            ErrorKind::Panic,
                            "worker panicked while serving this request; worker respawned",
                            None,
                            None,
                        ),
                    );
                }
                eprintln!("phoenixd: worker {slot} died; respawning");
            }
        }
    }
}

fn worker_loop(state: &ServerState, current: &Mutex<Option<JobMeta>>) {
    while let Some(job) = pop_job(state) {
        state.record_wait(job.enqueued.elapsed().as_micros() as u64);
        *current.lock().unwrap_or_else(|e| e.into_inner()) = Some(JobMeta {
            conn: job.conn,
            id: job.spec.id(),
            reply: job.reply.clone(),
        });
        // An expired deadline fires the token *here*, deterministically,
        // rather than waiting for the watchdog's next tick.
        if let Some(d) = job.deadline {
            if Instant::now() >= d {
                job.token.cancel_deadline();
            }
        }
        #[cfg(feature = "sabotage")]
        if let JobSpec::Compile(spec) = &job.spec {
            if spec.sabotage == Some(protocol::Sabotage::Worker) {
                panic!("sabotage: injected worker panic");
            }
        }
        let budget = job
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()));
        let started = Instant::now();
        let reply = job.spec.execute(&state.cache, job.token.clone(), budget);
        state.observe_job_time(started.elapsed());
        match reply.get("kind").and_then(Value::as_str) {
            Some("cancelled") => {
                Counters::bump(&state.counters.cancelled);
            }
            Some("deadline_exceeded") => {
                Counters::bump(&state.counters.deadline_exceeded);
            }
            _ => {}
        }
        Counters::bump(&state.counters.completed);
        send(&job.reply, reply);
        state.lock_registry().remove(&(job.conn, job.spec.id()));
        *current.lock().unwrap_or_else(|e| e.into_inner()) = None;
    }
}

/// Fires deadline cancellations for queued and running jobs; exits once the
/// server has drained.
fn watchdog(state: &ServerState) {
    loop {
        {
            let now = Instant::now();
            let registry = state.lock_registry();
            for entry in registry.values() {
                if entry.deadline.is_some_and(|d| now >= d) {
                    entry.token.cancel_deadline();
                }
            }
        }
        if state.draining() && state.lock_queue().is_empty() && state.lock_registry().is_empty() {
            return;
        }
        std::thread::sleep(WATCHDOG_TICK);
    }
}

/// One TCP connection: a reader (this thread) assembling size-bounded
/// frames, and a writer thread flushing replies behind a write timeout.
fn serve_connection(state: &ServerState, stream: TcpStream, conn: u64) {
    let _ = stream.set_read_timeout(Some(POLL));
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let _ = write_half.set_write_timeout(Some(state.config.write_timeout));
    let (tx, rx) = mpsc::channel::<String>();
    std::thread::scope(|scope| {
        scope.spawn(|| writer_loop(write_half, rx, state));
        let exit = reader_loop(state, stream, conn, &tx);
        if exit == ReaderExit::Abandoned {
            // The client is gone: fire the cancel tokens for whatever it
            // still had in flight, so workers stop burning time on results
            // nobody will observe. (A graceful drain is NOT abandonment —
            // admitted work must complete and flush.)
            let registry = state.lock_registry();
            for ((c, _), entry) in registry.iter() {
                if *c == conn {
                    entry.token.cancel();
                }
            }
        }
        drop(tx);
        // The writer exits once every reply sender is gone — i.e. after the
        // workers have answered this connection's remaining jobs.
    });
}

/// Why a connection's reader loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ReaderExit {
    /// The client hung up (EOF/reset) or was reaped while idle.
    Abandoned,
    /// The server is draining; the client may still be listening.
    Draining,
}

/// Flushes reply lines to the socket. A write that exceeds the timeout
/// marks the client slow: the connection's remaining replies are drained
/// and discarded (never blocking a worker), and the drop is counted.
fn writer_loop(mut stream: TcpStream, rx: Receiver<String>, state: &ServerState) {
    let mut dead = false;
    for line in rx {
        if dead {
            continue;
        }
        let mut bytes = line.into_bytes();
        bytes.push(b'\n');
        if stream.write_all(&bytes).is_err() || stream.flush().is_err() {
            dead = true;
            Counters::bump(&state.counters.slow_client_drops);
            let _ = stream.shutdown(std::net::Shutdown::Both);
        }
    }
}

/// Assembles newline-delimited frames with a hard size bound. Oversized
/// frames are discarded to the next newline and answered with
/// `frame_too_large`; idle connections with nothing in flight are reaped.
fn reader_loop(
    state: &ServerState,
    stream: TcpStream,
    conn: u64,
    tx: &Sender<String>,
) -> ReaderExit {
    let mut reader = BufReader::new(stream);
    let mut line: Vec<u8> = Vec::new();
    let mut discarding = false;
    let mut line_no: u64 = 0;
    let mut last_activity = Instant::now();
    loop {
        if state.draining() {
            return ReaderExit::Draining;
        }
        let buf = match reader.fill_buf() {
            Ok([]) => return ReaderExit::Abandoned, // EOF
            Ok(buf) => buf,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                let has_inflight = state.lock_registry().keys().any(|(c, _)| *c == conn);
                if !has_inflight && last_activity.elapsed() >= state.config.idle_timeout {
                    Counters::bump(&state.counters.reaped_connections);
                    return ReaderExit::Abandoned;
                }
                continue;
            }
            Err(_) => return ReaderExit::Abandoned,
        };
        last_activity = Instant::now();
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                let consumed = pos + 1;
                if discarding {
                    discarding = false;
                    line.clear();
                    reader.consume(consumed);
                    line_no += 1;
                    Counters::bump(&state.counters.oversized_frames);
                    send(tx, oversized_reply(line_no));
                    continue;
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(consumed);
                line_no += 1;
                if line.len() > state.config.max_frame_bytes {
                    Counters::bump(&state.counters.oversized_frames);
                    send(tx, oversized_reply(line_no));
                } else {
                    let text = String::from_utf8_lossy(&line).into_owned();
                    handle_frame(state, conn, &text, line_no, tx);
                }
                line.clear();
            }
            None => {
                let len = buf.len();
                if !discarding {
                    line.extend_from_slice(buf);
                    if line.len() > state.config.max_frame_bytes {
                        // Stop buffering a frame that can only be rejected.
                        discarding = true;
                        line.clear();
                    }
                }
                reader.consume(len);
            }
        }
    }
}
