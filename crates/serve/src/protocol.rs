//! The `phoenixd` wire protocol: line-delimited JSON requests and replies.
//!
//! One request per line, one JSON object per request; the server answers
//! every frame it manages to read with exactly one typed reply (compile
//! requests additionally receive a `cancelling` acknowledgment frame when
//! cancelled). Parsing is *strict*: frames over the size bound, malformed
//! JSON, missing required fields, and unknown fields are all rejected with
//! a line-numbered `invalid_request`/`frame_too_large` error reply rather
//! than silently ignored — a server for adversarial clients cannot afford
//! lenient parsing that masks client bugs.
//!
//! Requests:
//!
//! ```json
//! {"op":"compile","id":1,"qubits":3,"terms":[["ZYY",0.1],["ZZY",0.1]],
//!  "target":"cnot","deadline_ms":2000,"lookahead":20}
//! {"op":"fleet","id":4,"qubits":3,"terms":[["ZYY",0.1]],
//!  "devices":["line:4","grid:2x3","ion-trap:4"]}
//! {"cancel": 1}
//! {"op":"ping","id":2}
//! {"op":"stats","id":3}
//! ```
//!
//! Replies carry `"status":"ok"|"error"|"cancelling"|"pong"|"stats"`;
//! error replies carry a machine-readable `"kind"` (see [`ErrorKind`]) and
//! `Overloaded` additionally a `retry_after_ms` hint. A `fleet` reply
//! lists its members ranked by predicted fidelity.
//!
//! Hardware targets and fleet members name devices through the
//! [`DeviceRegistry`]: `line:N`, `ring:N`, `grid:RxC`, `heavy-hex:RxL`,
//! `ion-trap:N` (plus the fixed presets), with an optional
//! `@cnot`/`@su4`/`@kak` native-ISA suffix.

use phoenix_core::phoenix_cache::CacheStats;
use phoenix_core::{CompileOutcome, DeviceRegistry, FleetOutcome, PhoenixError, Target};
use phoenix_pauli::PauliString;
use serde_json::Value;

/// Default per-frame size bound (bytes), chosen to admit multi-thousand-term
/// Hamiltonians while bounding a hostile client's memory leverage.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

/// The machine-readable failure class of an error reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON, a missing/ill-typed field, or an unknown field.
    InvalidRequest,
    /// The frame exceeded the server's size bound.
    FrameTooLarge,
    /// Admission control shed the request; retry after `retry_after_ms`.
    Overloaded,
    /// The request was abandoned on an explicit client cancellation.
    Cancelled,
    /// The request was abandoned by the server-side wall-clock watchdog.
    DeadlineExceeded,
    /// Compilation failed with a typed [`PhoenixError`].
    CompileError,
    /// A worker panicked while serving the request (contained; the process
    /// lives and the worker was respawned).
    Panic,
    /// The server is draining and admits no new work.
    ShuttingDown,
    /// A cancel frame named an id with no in-flight request.
    NotFound,
}

impl ErrorKind {
    /// The stable snake_case wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::InvalidRequest => "invalid_request",
            ErrorKind::FrameTooLarge => "frame_too_large",
            ErrorKind::Overloaded => "overloaded",
            ErrorKind::Cancelled => "cancelled",
            ErrorKind::DeadlineExceeded => "deadline_exceeded",
            ErrorKind::CompileError => "compile_error",
            ErrorKind::Panic => "panic",
            ErrorKind::ShuttingDown => "shutting_down",
            ErrorKind::NotFound => "not_found",
        }
    }
}

/// Pass- or worker-level panic injection (the `sabotage` feature's modes).
#[cfg(feature = "sabotage")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sabotage {
    /// Panic inside a pipeline pass: contained by the pass manager,
    /// surfaced as a typed `compile_error`.
    Pass,
    /// Panic in the worker thread outside the pipeline: contained by the
    /// worker supervisor, surfaced as a typed `panic` reply, worker
    /// respawned.
    Worker,
}

/// A fully parsed compile request.
#[derive(Debug, Clone)]
pub struct CompileSpec {
    /// Client-chosen request id; echoed in every reply frame.
    pub id: u64,
    /// Register width.
    pub qubits: usize,
    /// The Pauli program.
    pub terms: Vec<(PauliString, f64)>,
    /// Compilation target.
    pub target: Target,
    /// Wall-clock deadline, measured from admission.
    pub deadline_ms: Option<u64>,
    /// Ordering-lookahead override.
    pub lookahead: Option<usize>,
    /// Panic injection mode (test builds only).
    #[cfg(feature = "sabotage")]
    pub sabotage: Option<Sabotage>,
}

/// A fully parsed fleet request: one program, many registry devices.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Client-chosen request id; echoed in every reply frame.
    pub id: u64,
    /// Register width.
    pub qubits: usize,
    /// The Pauli program.
    pub terms: Vec<(PauliString, f64)>,
    /// The fleet members, built from registry specs at parse time so an
    /// unknown device name fails fast with a line-numbered error.
    pub devices: Vec<phoenix_core::Device>,
    /// Wall-clock deadline, measured from admission.
    pub deadline_ms: Option<u64>,
    /// Ordering-lookahead override.
    pub lookahead: Option<usize>,
}

/// A parsed request frame.
#[derive(Debug, Clone)]
pub enum Request {
    /// Compile a program.
    Compile(CompileSpec),
    /// Compile one program against a fleet of registry devices and rank
    /// by predicted fidelity.
    Fleet(FleetSpec),
    /// Abandon the in-flight compile with this id (same connection).
    Cancel {
        /// The id of the compile frame to abandon.
        id: u64,
    },
    /// Liveness probe.
    Ping {
        /// Echoed id.
        id: u64,
    },
    /// Server counters snapshot.
    Stats {
        /// Echoed id.
        id: u64,
    },
}

/// Builds a JSON object [`Value`] from key/value pairs.
pub(crate) fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn str_val(s: &str) -> Value {
    Value::Str(s.to_string())
}

fn int_val(i: u64) -> Value {
    Value::Int(i as i64)
}

/// Serializes a reply [`Value`] to its wire line (no trailing newline; the
/// writer appends it).
pub fn render(reply: &Value) -> String {
    serde_json::to_string(reply).unwrap_or_else(|_| {
        r#"{"status":"error","kind":"internal","message":"unserializable reply"}"#.to_string()
    })
}

/// An error reply. `id` is echoed when the offending frame carried one;
/// `line` is the 1-based frame number on the connection.
pub fn error_reply(
    id: Option<u64>,
    kind: ErrorKind,
    message: &str,
    line: Option<u64>,
    retry_after_ms: Option<u64>,
) -> Value {
    let mut pairs = Vec::new();
    if let Some(id) = id {
        pairs.push(("id", int_val(id)));
    }
    pairs.push(("status", str_val("error")));
    pairs.push(("kind", str_val(kind.as_str())));
    pairs.push(("message", str_val(message)));
    if let Some(line) = line {
        pairs.push(("line", int_val(line)));
    }
    if let Some(ms) = retry_after_ms {
        pairs.push(("retry_after_ms", int_val(ms)));
    }
    obj(pairs)
}

/// The acknowledgment frame for a cancel request.
pub fn cancelling_reply(id: u64) -> Value {
    obj(vec![("id", int_val(id)), ("status", str_val("cancelling"))])
}

/// The reply to a ping.
pub fn pong_reply(id: u64) -> Value {
    obj(vec![("id", int_val(id)), ("status", str_val("pong"))])
}

/// Cache statistics as a JSON object.
pub fn cache_stats_value(stats: &CacheStats) -> Value {
    obj(vec![
        ("program_hits", int_val(stats.program_hits)),
        ("program_misses", int_val(stats.program_misses)),
        ("group_hits", int_val(stats.group_hits)),
        ("group_misses", int_val(stats.group_misses)),
        ("evictions", int_val(stats.evictions)),
        ("program_hit_rate", Value::Float(stats.program_hit_rate())),
        ("group_hit_rate", Value::Float(stats.group_hit_rate())),
    ])
}

/// The success reply for a compile request: circuit shape, the per-request
/// metrics snapshot, and the shared cache's running statistics.
pub fn ok_reply(id: u64, outcome: &CompileOutcome, cache: Option<&CacheStats>) -> Value {
    let counts = outcome.circuit.counts();
    let mut pairs = vec![
        ("id", int_val(id)),
        ("status", str_val("ok")),
        ("gates", int_val(counts.total as u64)),
        ("cnot", int_val(counts.cnot as u64)),
        ("two_qubit", int_val(counts.two_qubit() as u64)),
        ("depth", int_val(outcome.circuit.depth() as u64)),
        ("depth_2q", int_val(outcome.circuit.depth_2q() as u64)),
        ("num_groups", int_val(outcome.num_groups as u64)),
    ];
    if let Some(depth) = outcome.depth_reached {
        // Budgeted (anytime) compiles report how deep the deepening got —
        // the knob clients tune their deadline tiers by.
        pairs.push(("depth_reached", int_val(depth as u64)));
    }
    if let Some(report) = &outcome.obs {
        if let Ok(metrics) = serde_json::to_value(&report.metrics) {
            pairs.push(("metrics", metrics));
        }
    }
    if let Some(stats) = cache {
        pairs.push(("cache", cache_stats_value(stats)));
    }
    obj(pairs)
}

/// The success reply for a fleet request: members ranked by predicted
/// fidelity (best first), each with its circuit shape and routing cost,
/// plus any members that failed to compile.
pub fn fleet_ok_reply(id: u64, outcome: &FleetOutcome, cache: Option<&CacheStats>) -> Value {
    let ranked: Vec<Value> = outcome
        .ranked
        .iter()
        .map(|entry| {
            let counts = entry.outcome.circuit.counts();
            let swaps = entry
                .outcome
                .hardware
                .as_ref()
                .map_or(0, |hw| hw.num_swaps as u64);
            obj(vec![
                ("device", str_val(entry.device.name())),
                ("fidelity", Value::Float(entry.fidelity)),
                ("isa", str_val(entry.device.isa().name())),
                ("two_qubit", int_val(counts.two_qubit() as u64)),
                ("depth", int_val(entry.outcome.circuit.depth() as u64)),
                ("swaps", int_val(swaps)),
            ])
        })
        .collect();
    let failed: Vec<Value> = outcome
        .failed
        .iter()
        .map(|(name, err)| {
            obj(vec![
                ("device", str_val(name)),
                ("error", str_val(&err.to_string())),
            ])
        })
        .collect();
    let mut pairs = vec![
        ("id", int_val(id)),
        ("status", str_val("ok")),
        ("fleet", Value::Seq(ranked)),
    ];
    if !failed.is_empty() {
        pairs.push(("failed", Value::Seq(failed)));
    }
    if let Some(stats) = cache {
        pairs.push(("cache", cache_stats_value(stats)));
    }
    obj(pairs)
}

/// Maps a typed compile failure onto its wire reply.
pub fn compile_error_reply(id: u64, err: &PhoenixError) -> Value {
    let kind = match err {
        PhoenixError::Cancelled => ErrorKind::Cancelled,
        PhoenixError::DeadlineExceeded => ErrorKind::DeadlineExceeded,
        _ => ErrorKind::CompileError,
    };
    error_reply(Some(id), kind, &err.to_string(), None, None)
}

fn invalid(id: Option<u64>, line: u64, message: &str) -> Value {
    error_reply(id, ErrorKind::InvalidRequest, message, Some(line), None)
}

fn get_u64(map: &Value, key: &str) -> Option<u64> {
    map.get(key).and_then(Value::as_u64)
}

/// Rejects any key outside `allowed`, naming the first offender.
fn check_fields(map: &Value, allowed: &[&str]) -> Result<(), String> {
    let Value::Map(pairs) = map else {
        return Err("request frame must be a JSON object".to_string());
    };
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown field `{k}`"));
        }
    }
    Ok(())
}

fn parse_target(value: Option<&Value>) -> Result<Target, String> {
    let Some(value) = value else {
        return Ok(Target::Logical);
    };
    let Some(s) = value.as_str() else {
        return Err("`target` must be a string".to_string());
    };
    match s {
        "logical" => Ok(Target::Logical),
        "cnot" => Ok(Target::Cnot),
        "su4" => Ok(Target::Su4),
        "cnot-kak" => Ok(Target::CnotViaKak),
        // Anything else is a device spec, resolved through the registry so
        // unknown names and malformed sizes get its typed diagnostics.
        spec => DeviceRegistry::new()
            .build(spec)
            .map(Target::Device)
            .map_err(|e| format!("`target`: {e}")),
    }
}

/// Parses the `devices` field of a fleet frame: a non-empty array of
/// registry specs, each resolved through the [`DeviceRegistry`]. Errors
/// name the offending entry (`devices[i]: ...`).
fn parse_devices(value: Option<&Value>) -> Result<Vec<phoenix_core::Device>, String> {
    let entries = value
        .and_then(Value::as_array)
        .ok_or("`devices` must be an array of device-spec strings")?;
    if entries.is_empty() {
        return Err("`devices` must name at least one device".to_string());
    }
    let registry = DeviceRegistry::new();
    let mut devices = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let spec = entry
            .as_str()
            .ok_or_else(|| format!("devices[{i}] must be a device-spec string"))?;
        let device = registry
            .build(spec)
            .map_err(|e| format!("devices[{i}]: {e}"))?;
        devices.push(device);
    }
    Ok(devices)
}

fn parse_terms(value: Option<&Value>) -> Result<Vec<(PauliString, f64)>, String> {
    let entries = value
        .and_then(Value::as_array)
        .ok_or("`terms` must be an array of [pauli-string, coefficient] pairs")?;
    let mut terms = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let pair = entry
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("terms[{i}] must be a [string, number] pair"))?;
        let label = pair[0]
            .as_str()
            .ok_or_else(|| format!("terms[{i}][0] must be a Pauli string"))?;
        let pauli: PauliString = label.parse().map_err(|e| format!("terms[{i}]: {e}"))?;
        let coeff = pair[1]
            .as_f64()
            .ok_or_else(|| format!("terms[{i}][1] must be a number"))?;
        terms.push((pauli, coeff));
    }
    Ok(terms)
}

#[cfg(feature = "sabotage")]
fn parse_sabotage(value: Option<&Value>) -> Result<Option<Sabotage>, String> {
    match value.map(|v| v.as_str()) {
        None => Ok(None),
        Some(Some("pass")) => Ok(Some(Sabotage::Pass)),
        Some(Some("worker")) => Ok(Some(Sabotage::Worker)),
        Some(_) => Err("`sabotage` must be \"pass\" or \"worker\"".to_string()),
    }
}

/// Parses one request frame. `line_no` is the 1-based frame number on the
/// connection, echoed into error replies so clients can pinpoint the
/// offending frame in a pipelined stream. On failure the returned `Err` is
/// a ready-to-send error reply.
pub fn parse_request(frame: &str, line_no: u64) -> Result<Request, Value> {
    let value: Value = serde_json::from_str(frame)
        .map_err(|e| invalid(None, line_no, &format!("malformed JSON: {e}")))?;
    if !matches!(value, Value::Map(_)) {
        return Err(invalid(
            None,
            line_no,
            "request frame must be a JSON object",
        ));
    }
    // A cancel frame is its own single-field object.
    if value.get("cancel").is_some() {
        check_fields(&value, &["cancel"]).map_err(|m| invalid(None, line_no, &m))?;
        let id = get_u64(&value, "cancel")
            .ok_or_else(|| invalid(None, line_no, "`cancel` must be a request id"))?;
        return Ok(Request::Cancel { id });
    }
    let op = value
        .get("op")
        .map(|v| v.as_str().unwrap_or(""))
        .unwrap_or("compile");
    let id = get_u64(&value, "id");
    match op {
        "ping" | "stats" => {
            check_fields(&value, &["op", "id"]).map_err(|m| invalid(id, line_no, &m))?;
            let id = id.ok_or_else(|| invalid(None, line_no, "missing `id`"))?;
            Ok(match op {
                "ping" => Request::Ping { id },
                _ => Request::Stats { id },
            })
        }
        "compile" => {
            #[cfg(not(feature = "sabotage"))]
            const ALLOWED: &[&str] = &[
                "op",
                "id",
                "qubits",
                "terms",
                "target",
                "deadline_ms",
                "lookahead",
            ];
            #[cfg(feature = "sabotage")]
            const ALLOWED: &[&str] = &[
                "op",
                "id",
                "qubits",
                "terms",
                "target",
                "deadline_ms",
                "lookahead",
                "sabotage",
            ];
            check_fields(&value, ALLOWED).map_err(|m| invalid(id, line_no, &m))?;
            let id = id.ok_or_else(|| invalid(None, line_no, "missing `id`"))?;
            let qubits = get_u64(&value, "qubits")
                .ok_or_else(|| invalid(Some(id), line_no, "missing `qubits`"))?
                as usize;
            let terms =
                parse_terms(value.get("terms")).map_err(|m| invalid(Some(id), line_no, &m))?;
            let target =
                parse_target(value.get("target")).map_err(|m| invalid(Some(id), line_no, &m))?;
            let lookahead = get_u64(&value, "lookahead").map(|l| l as usize);
            let deadline_ms = get_u64(&value, "deadline_ms");
            #[cfg(feature = "sabotage")]
            let sabotage = parse_sabotage(value.get("sabotage"))
                .map_err(|m| invalid(Some(id), line_no, &m))?;
            Ok(Request::Compile(CompileSpec {
                id,
                qubits,
                terms,
                target,
                deadline_ms,
                lookahead,
                #[cfg(feature = "sabotage")]
                sabotage,
            }))
        }
        "fleet" => {
            const ALLOWED: &[&str] = &[
                "op",
                "id",
                "qubits",
                "terms",
                "devices",
                "deadline_ms",
                "lookahead",
            ];
            check_fields(&value, ALLOWED).map_err(|m| invalid(id, line_no, &m))?;
            let id = id.ok_or_else(|| invalid(None, line_no, "missing `id`"))?;
            let qubits = get_u64(&value, "qubits")
                .ok_or_else(|| invalid(Some(id), line_no, "missing `qubits`"))?
                as usize;
            let terms =
                parse_terms(value.get("terms")).map_err(|m| invalid(Some(id), line_no, &m))?;
            let devices =
                parse_devices(value.get("devices")).map_err(|m| invalid(Some(id), line_no, &m))?;
            let lookahead = get_u64(&value, "lookahead").map(|l| l as usize);
            let deadline_ms = get_u64(&value, "deadline_ms");
            Ok(Request::Fleet(FleetSpec {
                id,
                qubits,
                terms,
                devices,
                deadline_ms,
                lookahead,
            }))
        }
        other => Err(invalid(id, line_no, &format!("unknown op `{other}`"))),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_compile_frame() {
        let r = parse_request(
            r#"{"op":"compile","id":7,"qubits":2,"terms":[["ZZ",0.1],["XX",-0.2]]}"#,
            1,
        )
        .unwrap();
        let Request::Compile(spec) = r else {
            panic!("expected compile")
        };
        assert_eq!(spec.id, 7);
        assert_eq!(spec.qubits, 2);
        assert_eq!(spec.terms.len(), 2);
        assert_eq!(spec.target, Target::Logical);
        assert_eq!(spec.deadline_ms, None);
    }

    #[test]
    fn rejects_unknown_fields_with_the_line_number() {
        let err = parse_request(
            r#"{"op":"compile","id":1,"qubits":1,"terms":[],"bogus":true}"#,
            42,
        )
        .unwrap_err();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("invalid_request"));
        assert_eq!(err.get("line").unwrap().as_u64(), Some(42));
        assert!(err
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("bogus"));
    }

    #[test]
    fn rejects_malformed_json_and_non_objects() {
        assert!(parse_request("{not json", 1).is_err());
        assert!(parse_request("[1,2,3]", 1).is_err());
        assert!(parse_request("\"compile\"", 1).is_err());
    }

    #[test]
    fn rejects_bad_terms_and_targets() {
        let bad_pauli = parse_request(
            r#"{"op":"compile","id":1,"qubits":2,"terms":[["QQ",1.0]]}"#,
            1,
        )
        .unwrap_err();
        assert_eq!(
            bad_pauli.get("kind").unwrap().as_str(),
            Some("invalid_request")
        );
        let bad_target = parse_request(
            r#"{"op":"compile","id":1,"qubits":2,"terms":[["ZZ",1.0]],"target":"qpu9000"}"#,
            1,
        )
        .unwrap_err();
        assert!(bad_target
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("qpu9000"));
    }

    #[test]
    fn parses_cancel_ping_and_device_targets() {
        assert!(matches!(
            parse_request(r#"{"cancel":9}"#, 1).unwrap(),
            Request::Cancel { id: 9 }
        ));
        assert!(matches!(
            parse_request(r#"{"op":"ping","id":3}"#, 1).unwrap(),
            Request::Ping { id: 3 }
        ));
        let r = parse_request(
            r#"{"op":"compile","id":1,"qubits":4,"terms":[["ZZII",0.3]],"target":"line:4"}"#,
            1,
        )
        .unwrap();
        let Request::Compile(spec) = r else {
            panic!("expected compile")
        };
        let Target::Device(dev) = spec.target else {
            panic!("expected a registry device target")
        };
        assert_eq!(dev.name(), "line:4");
        assert_eq!(dev.graph().num_qubits(), 4);
    }

    #[test]
    fn parses_a_fleet_frame_with_registry_devices() {
        let r = parse_request(
            r#"{"op":"fleet","id":5,"qubits":3,"terms":[["ZZI",0.3]],
                "devices":["line:4","grid:2x3","ion-trap:4","heavy-hex:1x2"]}"#,
            1,
        )
        .unwrap();
        let Request::Fleet(spec) = r else {
            panic!("expected fleet")
        };
        assert_eq!(spec.id, 5);
        assert_eq!(spec.devices.len(), 4);
        assert_eq!(spec.devices[2].name(), "ion-trap:4");
    }

    #[test]
    fn fleet_frames_reject_bad_devices_with_entry_and_line() {
        let err = parse_request(
            r#"{"op":"fleet","id":5,"qubits":3,"terms":[["ZZI",0.3]],
                "devices":["line:4","torus:9"]}"#,
            17,
        )
        .unwrap_err();
        assert_eq!(err.get("kind").unwrap().as_str(), Some("invalid_request"));
        assert_eq!(err.get("line").unwrap().as_u64(), Some(17));
        let msg = err.get("message").unwrap().as_str().unwrap();
        assert!(msg.contains("devices[1]"), "{msg}");
        assert!(msg.contains("torus:9"), "{msg}");

        let empty = parse_request(
            r#"{"op":"fleet","id":5,"qubits":3,"terms":[["ZZI",0.3]],"devices":[]}"#,
            1,
        )
        .unwrap_err();
        assert!(empty
            .get("message")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("at least one device"));
    }

    #[test]
    fn malformed_device_sizes_get_typed_messages() {
        let err = parse_request(
            r#"{"op":"compile","id":1,"qubits":2,"terms":[["ZZ",1.0]],"target":"grid:4"}"#,
            3,
        )
        .unwrap_err();
        let msg = err.get("message").unwrap().as_str().unwrap();
        assert!(msg.contains("malformed device size"), "{msg}");
        assert_eq!(err.get("line").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn cancel_frames_admit_no_extra_fields() {
        assert!(parse_request(r#"{"cancel":1,"id":2}"#, 1).is_err());
    }

    #[test]
    fn error_replies_round_trip_through_json() {
        let v = error_reply(
            Some(4),
            ErrorKind::Overloaded,
            "queue full",
            None,
            Some(125),
        );
        let line = render(&v);
        let back: Value = serde_json::from_str(&line).unwrap();
        assert_eq!(back.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(back.get("kind").unwrap().as_str(), Some("overloaded"));
        assert_eq!(back.get("retry_after_ms").unwrap().as_u64(), Some(125));
    }
}
