//! `phoenix-serve`: the fault-tolerant compile service behind `phoenixd`.
//!
//! The PHOENIX pipeline already carries the robustness primitives a server
//! needs — typed [`PhoenixError`]s, per-pass panic containment,
//! `pass_budget` deadlines, cooperative [`CancelToken`]s, and per-request
//! metrics. This crate turns them into long-running infrastructure:
//!
//! - **[`protocol`]** — the strict line-delimited JSON wire format (frame
//!   size bounds, unknown-field rejection, line-numbered errors).
//! - **[`server`]** — a bounded worker pool with admission control that
//!   sheds load with typed `overloaded` replies, a wall-clock deadline
//!   watchdog, client-initiated cancellation, per-request panic isolation
//!   with worker respawn, slow-client write timeouts, half-open connection
//!   reaping, and graceful drain on shutdown. Speaks TCP (`std::net` +
//!   scoped threads — no async runtime) and stdio.
//! - **[`client`]** — a blocking client with retry, exponential backoff and
//!   jitter on `overloaded`/transient I/O failures.
//!
//! A process-wide [`CompileCache`] (bounded via
//! [`CompileCache::with_capacity`]) is mounted across all workers, and
//! every successful reply carries the per-request metrics snapshot plus the
//! cache's running hit statistics.

#[deny(clippy::unwrap_used)]
pub mod client;
#[deny(clippy::unwrap_used)]
pub mod protocol;
#[deny(clippy::unwrap_used)]
pub mod server;

pub use client::{Client, RetryPolicy};
pub use protocol::{CompileSpec, ErrorKind, FleetSpec, Request};
pub use server::{ServeReport, Server, ServerConfig, ServerHandle};

use std::sync::Arc;
use std::time::Duration;

use phoenix_core::phoenix_cache::CompileCache;
use phoenix_core::{CancelToken, CompileRequest, PhoenixError, PhoenixOptions};
use serde_json::Value;

/// Executes one compile request against the pipeline, mapping the outcome
/// (success, typed failure, cancellation, deadline) onto its wire reply.
///
/// `budget` becomes the request's `pass_budget`: optimization effort is
/// truncated once it elapses, while the wall-clock watchdog (driving
/// `cancel`) aborts outright. Requests without a budget take the cached
/// structure path when `cache` is mounted; budgeted requests deterministically
/// bypass it (time-boxed runs must not leak into a shared cache).
pub fn execute_spec(
    spec: &CompileSpec,
    cache: Option<&Arc<CompileCache>>,
    cancel: Option<CancelToken>,
    budget: Option<Duration>,
) -> Value {
    #[cfg(feature = "sabotage")]
    if spec.sabotage == Some(protocol::Sabotage::Pass) {
        return sabotage_pass_reply(spec);
    }
    if let Some(reason) = cancel.as_ref().and_then(|t| t.reason()) {
        // Cancelled while queued: reply without compiling at all.
        let err = match reason {
            phoenix_core::CancelReason::Client => PhoenixError::Cancelled,
            phoenix_core::CancelReason::Deadline => PhoenixError::DeadlineExceeded,
        };
        return protocol::compile_error_reply(spec.id, &err);
    }
    let mut options = PhoenixOptions {
        pass_budget: budget,
        // Tiered QoS: map the deadline onto a logical deepening cap so a
        // roomier deadline buys a deeper (never worse) search even when the
        // wall clock would not have interrupted the shallow one.
        anytime_rounds: budget.map(deepening_rounds),
        cancel,
        ..PhoenixOptions::default()
    };
    if let Some(lookahead) = spec.lookahead {
        options.lookahead = lookahead;
    }
    let mut request = CompileRequest::new(spec.qubits, &spec.terms)
        .target(spec.target.clone())
        .options(options)
        .obs(true);
    if let Some(cache) = cache {
        request = request.cache(cache);
    }
    match request.run() {
        Ok(outcome) => {
            let stats = cache.map(|c| c.stats());
            protocol::ok_reply(spec.id, &outcome, stats.as_ref())
        }
        Err(err) => protocol::compile_error_reply(spec.id, &err),
    }
}

/// Executes one fleet request: compiles the program against every named
/// registry device in parallel and replies with the members ranked by
/// predicted fidelity. Deadlines and cancellation apply to the fleet as a
/// whole — the budget/token is shared by every member, exactly as a
/// single compile would see it. An empty ranking with at least one member
/// failure is still an `ok` reply (the `failed` list tells the story);
/// only a whole-fleet error (e.g. cancellation) maps to an error reply.
pub fn execute_fleet_spec(
    spec: &FleetSpec,
    cache: Option<&Arc<CompileCache>>,
    cancel: Option<CancelToken>,
    budget: Option<Duration>,
) -> Value {
    if let Some(reason) = cancel.as_ref().and_then(|t| t.reason()) {
        let err = match reason {
            phoenix_core::CancelReason::Client => PhoenixError::Cancelled,
            phoenix_core::CancelReason::Deadline => PhoenixError::DeadlineExceeded,
        };
        return protocol::compile_error_reply(spec.id, &err);
    }
    let mut options = PhoenixOptions {
        pass_budget: budget,
        anytime_rounds: budget.map(deepening_rounds),
        cancel,
        ..PhoenixOptions::default()
    };
    if let Some(lookahead) = spec.lookahead {
        options.lookahead = lookahead;
    }
    let mut request = CompileRequest::new(spec.qubits, &spec.terms)
        .options(options)
        .obs(true);
    if let Some(cache) = cache {
        request = request.cache(cache);
    }
    match request.fleet(&spec.devices) {
        Ok(outcome) => {
            // A member abandoned by cancellation/deadline abandons the
            // fleet reply too — a partial ranking under an expired deadline
            // would be indistinguishable from a complete one.
            if let Some((_, err)) = outcome.failed.iter().find(|(_, e)| {
                matches!(e, PhoenixError::Cancelled | PhoenixError::DeadlineExceeded)
            }) {
                return protocol::compile_error_reply(spec.id, err);
            }
            let stats = cache.map(|c| c.stats());
            protocol::fleet_ok_reply(spec.id, &outcome, stats.as_ref())
        }
        Err(err) => protocol::compile_error_reply(spec.id, &err),
    }
}

/// Maps a request deadline onto an anytime deepening cap: the QoS tiers of
/// `phoenixd`. Tighter deadlines get a shallower logical schedule — they
/// would be wall-clock-truncated anyway, and capping the rounds makes the
/// quality tier deterministic instead of machine-speed-dependent. Roomier
/// deadlines deepen further; ≥ 1 s runs the full schedule.
pub fn deepening_rounds(budget: Duration) -> usize {
    match budget.as_millis() {
        0..=9 => 2,
        10..=99 => 4,
        100..=999 => 6,
        _ => phoenix_core::MAX_ROUNDS,
    }
}

/// Compiles through a deliberately panicking pass, proving the pass
/// manager's containment: the panic surfaces as a typed `compile_error`
/// reply and the process lives.
#[cfg(feature = "sabotage")]
fn sabotage_pass_reply(spec: &CompileSpec) -> Value {
    use phoenix_core::{CompileContext, Pass, PassError, PassManager};

    struct PanickingPass;
    impl Pass for PanickingPass {
        fn name(&self) -> &str {
            "sabotage-panic"
        }
        fn run(&self, _ctx: &mut CompileContext) -> Result<(), PassError> {
            panic!("sabotage: injected pass panic");
        }
    }

    let mut ctx = CompileContext::new(spec.qubits, &spec.terms);
    match PassManager::new().with(PanickingPass).run(&mut ctx) {
        Err(e) => protocol::compile_error_reply(spec.id, &PhoenixError::from(e)),
        Ok(_) => protocol::error_reply(
            Some(spec.id),
            ErrorKind::CompileError,
            "sabotage pass unexpectedly succeeded",
            None,
            None,
        ),
    }
}

/// One-shot stdio service (`phoenixc --serve-stdin`): reads a single
/// request frame from `input`, executes it uncached, and returns the reply
/// line. Exercises the exact wire format of `phoenixd` without a socket.
pub fn serve_one_line(line: &str) -> String {
    let reply = match protocol::parse_request(line.trim_end(), 1) {
        Err(reply) => reply,
        Ok(Request::Compile(spec)) => {
            let budget = spec.deadline_ms.map(Duration::from_millis);
            execute_spec(&spec, None, None, budget)
        }
        Ok(Request::Fleet(spec)) => {
            let budget = spec.deadline_ms.map(Duration::from_millis);
            execute_fleet_spec(&spec, None, None, budget)
        }
        Ok(Request::Ping { id }) => protocol::pong_reply(id),
        Ok(Request::Cancel { id }) => protocol::error_reply(
            Some(id),
            ErrorKind::NotFound,
            "one-shot mode has no in-flight requests to cancel",
            None,
            None,
        ),
        Ok(Request::Stats { id }) => protocol::error_reply(
            Some(id),
            ErrorKind::NotFound,
            "one-shot mode keeps no server statistics",
            None,
            None,
        ),
    };
    protocol::render(&reply)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn serve_one_line_compiles_a_valid_frame() {
        let reply = serve_one_line(
            r#"{"op":"compile","id":1,"qubits":3,"terms":[["ZYY",0.1],["ZZY",0.1]],"target":"cnot"}"#,
        );
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(v.get("id").unwrap().as_u64(), Some(1));
        assert!(v.get("gates").unwrap().as_u64().unwrap() > 0);
        assert!(v.get("metrics").is_some());
    }

    #[test]
    fn serve_one_line_answers_a_fleet_frame_with_a_ranking() {
        let reply = serve_one_line(
            r#"{"op":"fleet","id":9,"qubits":4,"terms":[["ZZII",0.2],["IZZI",0.2],["IIZZ",0.2],["XIIX",0.1]],"devices":["line:5","grid:2x3","ion-trap:5","ring:5"]}"#,
        );
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"), "{reply}");
        assert_eq!(v.get("id").unwrap().as_u64(), Some(9));
        let fleet = v.get("fleet").unwrap().as_array().unwrap();
        assert_eq!(fleet.len(), 4);
        let fidelities: Vec<f64> = fleet
            .iter()
            .map(|e| e.get("fidelity").unwrap().as_f64().unwrap())
            .collect();
        for pair in fidelities.windows(2) {
            assert!(pair[0] >= pair[1], "reply not fidelity-ranked: {reply}");
        }
        for entry in fleet {
            assert!(entry.get("device").unwrap().as_str().is_some());
            assert!(entry.get("two_qubit").unwrap().as_u64().is_some());
            assert!(entry.get("depth").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn serve_one_line_rejects_garbage_with_a_typed_error() {
        let reply = serve_one_line("{broken");
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("error"));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("invalid_request"));
    }

    #[test]
    fn zero_deadline_still_produces_a_valid_truncated_compile() {
        // In one-shot mode there is no watchdog: a zero deadline maps to a
        // zero pass budget, which truncates optimization but still returns
        // a valid circuit.
        let reply = serve_one_line(
            r#"{"op":"compile","id":2,"qubits":2,"terms":[["ZZ",0.3]],"deadline_ms":0}"#,
        );
        let v: Value = serde_json::from_str(&reply).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
    }

    #[test]
    fn pre_cancelled_spec_replies_cancelled_without_compiling() {
        let spec = CompileSpec {
            id: 5,
            qubits: 2,
            terms: vec![("ZZ".parse().unwrap(), 0.1)],
            target: phoenix_core::Target::Logical,
            deadline_ms: None,
            lookahead: None,
            #[cfg(feature = "sabotage")]
            sabotage: None,
        };
        let token = CancelToken::new();
        token.cancel();
        let reply = execute_spec(&spec, None, Some(token), None);
        assert_eq!(reply.get("kind").unwrap().as_str(), Some("cancelled"));
    }
}
