//! End-to-end robustness tests for `phoenixd`'s server core: adversarial
//! framing, overload shedding, deadlines, cancellation, disconnects,
//! graceful drain, and (behind `--features sabotage`) panic containment.
//!
//! Every test runs a real [`Server`] on an ephemeral TCP port with real
//! sockets — the same code path `phoenixd` ships.

#![allow(clippy::unwrap_used)]

use std::net::{SocketAddr, TcpListener};
use std::thread::JoinHandle;
use std::time::Duration;

use phoenix_mathkit::Xoshiro256;
use phoenix_serve::{Client, RetryPolicy, ServeReport, Server, ServerConfig, ServerHandle};
use serde_json::Value;

fn start_server(config: ServerConfig) -> (ServerHandle, SocketAddr, JoinHandle<ServeReport>) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let server = Server::new(config);
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run_tcp(listener));
    (handle, addr, join)
}

fn connect(addr: SocketAddr) -> Client {
    Client::connect(&addr.to_string(), RetryPolicy::default()).unwrap()
}

/// A compile frame over `qubits` qubits with `n` random non-identity terms;
/// large `n` makes the compile slow enough to observe queued/running states.
fn compile_frame(id: u64, qubits: usize, n: usize, seed: u64) -> String {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut terms = Vec::with_capacity(n);
    loop {
        let label: String = (0..qubits)
            .map(|_| ['I', 'X', 'Y', 'Z'][rng.next_below(4)])
            .collect();
        if label.bytes().all(|b| b == b'I') {
            continue;
        }
        terms.push(format!("[\"{label}\",{:.4}]", rng.next_f64() - 0.5));
        if terms.len() == n {
            break;
        }
    }
    format!(
        "{{\"op\":\"compile\",\"id\":{id},\"qubits\":{qubits},\"terms\":[{}],\"target\":\"cnot\"}}",
        terms.join(",")
    )
}

fn kind(reply: &Value) -> Option<&str> {
    reply.get("kind").and_then(Value::as_str)
}

fn status(reply: &Value) -> &str {
    reply.get("status").and_then(Value::as_str).unwrap_or("")
}

#[test]
fn compile_round_trip_reports_metrics_and_cache_hits() {
    let (handle, addr, join) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    let frame = compile_frame(1, 4, 6, 11);
    let first = client.request(1, &frame).unwrap();
    assert_eq!(status(&first), "ok", "reply: {first:?}");
    assert!(first.get("gates").and_then(Value::as_u64).unwrap() > 0);
    assert!(first.get("metrics").is_some(), "metrics snapshot missing");
    // The identical structure again: the shared cache must register a hit.
    let second = client.request(2, &compile_frame(2, 4, 6, 11)).unwrap();
    assert_eq!(status(&second), "ok");
    let hits = second
        .get("cache")
        .and_then(|c| c.get("program_hits"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(hits >= 1, "expected a program cache hit, got {hits}");
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.admitted, 2);
    assert_eq!(report.completed, 2);
    assert_eq!(report.worker_deaths, 0);
}

#[test]
fn torn_frames_are_reassembled_across_writes() {
    let (handle, addr, join) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    let frame = compile_frame(3, 3, 4, 22);
    let bytes = frame.as_bytes();
    let (a, rest) = bytes.split_at(7);
    let (b, c) = rest.split_at(rest.len() / 2);
    client.send_raw(a).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    client.send_raw(b).unwrap();
    std::thread::sleep(Duration::from_millis(30));
    client.send_raw(c).unwrap();
    client.send_raw(b"\n").unwrap();
    let reply = client.wait_reply(3).unwrap();
    assert_eq!(status(&reply), "ok", "reply: {reply:?}");
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn oversized_frames_are_rejected_and_the_connection_survives() {
    let config = ServerConfig {
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    };
    let (handle, addr, join) = start_server(config);
    let mut client = connect(addr);
    // ~64 KiB of garbage on one line: rejected without buffering it all.
    let huge = "x".repeat(64 * 1024);
    client.send_line(&huge).unwrap();
    let reply: Value = serde_json::from_str(&client.recv_line().unwrap()).unwrap();
    assert_eq!(kind(&reply), Some("frame_too_large"));
    // Same connection still serves valid work.
    let ok = client.request(4, &compile_frame(4, 3, 3, 33)).unwrap();
    assert_eq!(status(&ok), "ok");
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.oversized_frames, 1);
}

#[test]
fn malformed_frames_get_line_numbered_typed_errors() {
    let (handle, addr, join) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    client.send_line("{this is not json").unwrap();
    client
        .send_line(r#"{"op":"compile","id":9,"qubits":1,"terms":[["Z",1.0]],"bogus":1}"#)
        .unwrap();
    let first: Value = serde_json::from_str(&client.recv_line().unwrap()).unwrap();
    let second: Value = serde_json::from_str(&client.recv_line().unwrap()).unwrap();
    assert_eq!(kind(&first), Some("invalid_request"));
    assert_eq!(first.get("line").and_then(Value::as_u64), Some(1));
    assert_eq!(kind(&second), Some("invalid_request"));
    assert_eq!(second.get("line").and_then(Value::as_u64), Some(2));
    assert!(second
        .get("message")
        .and_then(Value::as_str)
        .unwrap()
        .contains("bogus"));
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.invalid_frames, 2);
    assert_eq!(report.admitted, 0);
}

#[test]
fn zero_capacity_queue_sheds_every_request_with_a_retry_hint() {
    let config = ServerConfig {
        queue_capacity: 0,
        ..ServerConfig::default()
    };
    let (handle, addr, join) = start_server(config);
    let mut client = connect(addr);
    let policy_bypass = 3; // send raw so the client doesn't retry the shed
    for id in 0..policy_bypass {
        client.send_line(&compile_frame(id, 2, 2, id + 1)).unwrap();
    }
    for _ in 0..policy_bypass {
        let reply: Value = serde_json::from_str(&client.recv_line().unwrap()).unwrap();
        assert_eq!(kind(&reply), Some("overloaded"), "reply: {reply:?}");
        let hint = reply.get("retry_after_ms").and_then(Value::as_u64).unwrap();
        assert!((10..=10_000).contains(&hint));
    }
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.shed, policy_bypass);
    assert_eq!(report.admitted, 0);
}

#[test]
fn zero_deadline_is_deterministically_deadline_exceeded() {
    let (handle, addr, join) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    for id in 10..13 {
        let frame = format!(
            "{{\"op\":\"compile\",\"id\":{id},\"qubits\":2,\"terms\":[[\"ZZ\",0.5]],\"deadline_ms\":0}}"
        );
        let reply = client.request(id, &frame).unwrap();
        assert_eq!(kind(&reply), Some("deadline_exceeded"), "reply: {reply:?}");
    }
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.deadline_exceeded, 3);
    assert_eq!(report.completed, 3);
}

#[test]
fn queued_request_is_cancelled_by_the_client() {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let (handle, addr, join) = start_server(config);
    let mut client = connect(addr);
    // A large job pins the single worker; the victim queues behind it.
    client.send_line(&compile_frame(100, 10, 400, 55)).unwrap();
    std::thread::sleep(Duration::from_millis(80));
    client.send_line(&compile_frame(101, 3, 3, 56)).unwrap();
    std::thread::sleep(Duration::from_millis(40));
    client.cancel(101).unwrap();
    let victim = client.wait_reply(101).unwrap();
    assert_eq!(kind(&victim), Some("cancelled"), "reply: {victim:?}");
    let big = client.wait_reply(100).unwrap();
    assert_eq!(status(&big), "ok", "reply: {big:?}");
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.cancelled, 1);
    assert_eq!(report.admitted, 2);
    assert_eq!(report.completed, 2);
}

#[test]
fn cancelling_an_unknown_id_is_a_typed_not_found() {
    let (handle, addr, join) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    client.send_line("{\"cancel\":777}").unwrap();
    let reply: Value = serde_json::from_str(&client.recv_line().unwrap()).unwrap();
    assert_eq!(kind(&reply), Some("not_found"));
    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn mid_compile_disconnect_frees_the_worker_and_the_server_survives() {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let (handle, addr, join) = start_server(config);
    {
        let mut doomed = connect(addr);
        doomed.send_line(&compile_frame(200, 10, 400, 77)).unwrap();
        std::thread::sleep(Duration::from_millis(80));
        // Hang up mid-compile: the server must cancel the abandoned work.
    }
    // A fresh client gets served promptly — the single worker was freed.
    let mut client = connect(addr);
    let pong = client.ping(201).unwrap();
    assert_eq!(status(&pong), "pong");
    let ok = client.request(202, &compile_frame(202, 3, 3, 78)).unwrap();
    assert_eq!(status(&ok), "ok");
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.worker_deaths, 0);
    assert_eq!(report.admitted, 2);
    assert_eq!(report.completed, 2);
}

#[test]
fn graceful_drain_answers_every_admitted_request() {
    let (handle, addr, join) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    let n = 6;
    for id in 0..n {
        client
            .send_line(&compile_frame(id, 5, 12, 90 + id))
            .unwrap();
    }
    // Let the frames be read and admitted, then pull the plug mid-flight.
    std::thread::sleep(Duration::from_millis(60));
    handle.shutdown();
    let mut ok = 0u64;
    for id in 0..n {
        let reply = client.wait_reply(id).unwrap();
        match status(&reply) {
            "ok" => ok += 1,
            "error" => assert_eq!(kind(&reply), Some("shutting_down"), "reply: {reply:?}"),
            other => panic!("unexpected status {other}: {reply:?}"),
        }
    }
    let report = join.join().unwrap();
    assert_eq!(
        report.admitted, report.completed,
        "drain must finish all admitted work"
    );
    assert_eq!(ok, report.completed);
    assert_eq!(report.worker_deaths, 0);
}

/// Like [`compile_frame`] but with a `deadline_ms`, putting the request on
/// the budgeted (anytime deepening) path.
fn budgeted_frame(id: u64, qubits: usize, n: usize, seed: u64, deadline_ms: u64) -> String {
    let frame = compile_frame(id, qubits, n, seed);
    debug_assert!(frame.ends_with('}'));
    format!(
        "{},\"deadline_ms\":{deadline_ms}}}",
        &frame[..frame.len() - 1]
    )
}

#[test]
fn tiered_deadlines_trade_latency_for_quality() {
    let (handle, addr, join) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    // The same program at the 5 ms and 500 ms QoS tiers: both must succeed
    // (anytime always holds a valid best-so-far), and the roomier deadline
    // must deepen at least as far and never return a worse circuit.
    let fast = client
        .request(300, &budgeted_frame(300, 5, 12, 91, 5))
        .unwrap();
    let slow = client
        .request(301, &budgeted_frame(301, 5, 12, 91, 500))
        .unwrap();
    assert_eq!(status(&fast), "ok", "reply: {fast:?}");
    assert_eq!(status(&slow), "ok", "reply: {slow:?}");
    let depth = |r: &Value| r.get("depth_reached").and_then(Value::as_u64).unwrap();
    let cost = |r: &Value| {
        (
            r.get("two_qubit").and_then(Value::as_u64).unwrap(),
            r.get("depth_2q").and_then(Value::as_u64).unwrap(),
            r.get("gates").and_then(Value::as_u64).unwrap(),
        )
    };
    assert!(
        depth(&slow) >= depth(&fast),
        "roomier deadline deepened less: {} vs {}",
        depth(&slow),
        depth(&fast)
    );
    assert!(
        cost(&slow) <= cost(&fast),
        "roomier deadline returned a worse circuit: {:?} vs {:?}",
        cost(&slow),
        cost(&fast)
    );
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.admitted, 2);
    assert_eq!(report.completed, 2);
    assert_eq!(report.worker_deaths, 0);
}

#[test]
fn cancelling_mid_deepening_returns_the_best_so_far() {
    let config = ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    };
    let (handle, addr, join) = start_server(config);
    let mut client = connect(addr);
    // A big budgeted job: the roomy deadline means deepening would run for
    // a long time, so the cancel lands mid-round.
    client
        .send_line(&budgeted_frame(400, 10, 400, 77, 600_000))
        .unwrap();
    std::thread::sleep(Duration::from_millis(120));
    client.cancel(400).unwrap();
    let reply = client.wait_reply(400).unwrap();
    // Anytime semantics: cancellation of a budgeted request yields the
    // best-so-far circuit as a normal success, not a `cancelled` error.
    assert_eq!(status(&reply), "ok", "reply: {reply:?}");
    assert!(
        reply.get("depth_reached").and_then(Value::as_u64).is_some(),
        "reply: {reply:?}"
    );
    assert!(reply.get("gates").and_then(Value::as_u64).unwrap() > 0);
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.admitted, 1);
    assert_eq!(report.completed, 1);
    assert_eq!(report.worker_deaths, 0);
}

#[test]
fn fleet_frames_return_a_fidelity_ranked_listing_end_to_end() {
    let (handle, addr, join) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    let frame = concat!(
        r#"{"op":"fleet","id":41,"qubits":4,"#,
        r#""terms":[["ZZII",0.2],["IZZI",0.2],["IIZZ",0.2],["XIIX",0.1],["IYYI",0.15]],"#,
        r#""devices":["line:5","grid:2x3","ion-trap:5","ring:5"]}"#
    );
    let reply = client.request(41, frame).unwrap();
    assert_eq!(status(&reply), "ok", "reply: {reply:?}");
    let ranked = reply.get("fleet").and_then(Value::as_array).unwrap();
    assert_eq!(ranked.len(), 4, "reply: {reply:?}");
    let fidelities: Vec<f64> = ranked
        .iter()
        .map(|e| e.get("fidelity").and_then(Value::as_f64).unwrap())
        .collect();
    for pair in fidelities.windows(2) {
        assert!(pair[0] >= pair[1], "fleet reply not fidelity-ranked");
    }
    for entry in ranked {
        assert!(entry.get("device").and_then(Value::as_str).is_some());
        assert!(entry.get("two_qubit").and_then(Value::as_u64).is_some());
        assert!(entry.get("depth").and_then(Value::as_u64).is_some());
    }
    // The same fleet again: the members share one cached program structure.
    let again = client
        .request(42, &frame.replace("\"id\":41", "\"id\":42"))
        .unwrap();
    assert_eq!(status(&again), "ok");
    let hits = again
        .get("cache")
        .and_then(|c| c.get("program_hits"))
        .and_then(Value::as_u64)
        .unwrap();
    assert!(hits >= 1, "expected a program cache hit, got {hits}");
    handle.shutdown();
    let report = join.join().unwrap();
    assert_eq!(report.admitted, 2);
    assert_eq!(report.completed, 2);
}

#[test]
fn stats_frames_snapshot_the_server_counters() {
    let (handle, addr, join) = start_server(ServerConfig::default());
    let mut client = connect(addr);
    let ok = client.request(1, &compile_frame(1, 3, 3, 5)).unwrap();
    assert_eq!(status(&ok), "ok");
    let stats = client.request(2, r#"{"op":"stats","id":2}"#).unwrap();
    assert_eq!(status(&stats), "stats");
    assert_eq!(stats.get("admitted").and_then(Value::as_u64), Some(1));
    assert!(stats.get("cache").is_some());
    handle.shutdown();
    join.join().unwrap();
}

#[cfg(feature = "sabotage")]
mod sabotage {
    use super::*;

    #[test]
    fn pass_panic_is_contained_as_a_typed_compile_error() {
        let (handle, addr, join) = start_server(ServerConfig::default());
        let mut client = connect(addr);
        let frame = r#"{"op":"compile","id":1,"qubits":2,"terms":[["ZZ",0.5]],"sabotage":"pass"}"#;
        let reply = client.request(1, frame).unwrap();
        assert_eq!(kind(&reply), Some("compile_error"), "reply: {reply:?}");
        assert!(reply
            .get("message")
            .and_then(Value::as_str)
            .unwrap()
            .contains("panicked"));
        // The worker itself never died: containment happened in the pass
        // manager layer.
        let ok = client.request(2, &compile_frame(2, 3, 3, 9)).unwrap();
        assert_eq!(status(&ok), "ok");
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.worker_deaths, 0);
    }

    #[test]
    fn worker_panic_is_contained_and_the_worker_respawns() {
        let config = ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        };
        let (handle, addr, join) = start_server(config);
        let mut client = connect(addr);
        let frame =
            r#"{"op":"compile","id":1,"qubits":2,"terms":[["ZZ",0.5]],"sabotage":"worker"}"#;
        let reply = client.request(1, frame).unwrap();
        assert_eq!(kind(&reply), Some("panic"), "reply: {reply:?}");
        // The sole worker died and respawned; the server still serves.
        let ok = client.request(2, &compile_frame(2, 3, 3, 9)).unwrap();
        assert_eq!(status(&ok), "ok");
        handle.shutdown();
        let report = join.join().unwrap();
        assert_eq!(report.worker_deaths, 1);
        assert_eq!(report.panics_contained, 1);
        assert_eq!(report.completed, 2);
    }
}
