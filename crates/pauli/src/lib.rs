//! Pauli strings, the binary symplectic form (BSF), and Clifford conjugation
//! calculus — the formal substrate of the PHOENIX compiler.
//!
//! PHOENIX (DAC 2025) represents Hamiltonian-simulation programs as lists of
//! *Pauli exponentiations* `exp(-iθ P)` and optimizes them in the **binary
//! symplectic form**: each `n`-qubit Pauli string is a row `[X | Z]` of bits,
//! and Clifford conjugations act as column operations (Fig. 2 of the paper).
//!
//! This crate provides:
//!
//! - [`Pauli`] / [`PauliString`]: single- and multi-qubit Pauli operators with
//!   phase-tracked multiplication and symplectic commutation checks;
//! - [`PauliPolynomial`]: linear combinations of Pauli strings with complex
//!   coefficients (the output type of fermion-to-qubit encodings);
//! - [`Bsf`]: the signed binary-symplectic tableau that Algorithm 1 of the
//!   paper simplifies;
//! - [`Clifford2QKind`] / [`Clifford2Q`]: the six universal controlled gates
//!   `{C(X,X), C(Y,Y), C(Z,Z), C(X,Y), C(Y,Z), C(Z,X)}` of Eq. (5), whose
//!   tableau update rules are derived at run time from ground-truth 4×4
//!   complex-matrix conjugation rather than hand-transcribed.
//!
//! # Examples
//!
//! ```
//! use phoenix_pauli::{Bsf, Clifford2Q, Clifford2QKind, PauliString};
//!
//! // The motivating example of Fig. 1(b): conjugating by C(X,Y) on qubits
//! // (1, 2) simultaneously lowers the weight of four weight-3 strings.
//! let strings = ["ZYY", "ZZY", "XYY", "XZY"]
//!     .iter()
//!     .map(|s| (s.parse::<PauliString>().unwrap(), 1.0))
//!     .collect::<Vec<_>>();
//! let mut bsf = Bsf::from_terms(3, strings).unwrap();
//! bsf.apply_clifford2q(Clifford2Q::new(Clifford2QKind::Cxy, 1, 2));
//! assert!(bsf.rows().iter().all(|r| r.weight() == 2));
//! ```

mod algebra;
mod bsf;
pub mod canon;
mod clifford;
pub mod mask;
mod pauli;
mod string;

pub use algebra::{NonHermitianError, PauliPolynomial, PauliTerm};
pub use bsf::{fold_conjugation_sign, nibble_weight, Bsf, BsfError, BsfRow};
pub use canon::{term_hash, CanonicalIr, ZobristAcc};
pub use clifford::{Clifford2Q, Clifford2QKind, CLIFFORD2Q_GENERATORS};
pub use mask::QubitMask;
pub use pauli::Pauli;
pub use string::{ParsePauliStringError, PauliString, WidthError, MAX_QUBITS};
