//! Variable-width packed qubit bit masks.
//!
//! Every hot kernel of the compiler — symplectic commutation parity, support
//! popcounts, nibble-class extraction, Clifford conjugation, Zobrist hashing
//! — operates on per-qubit bit masks. [`QubitMask`] packs those bits into
//! `u64` words in the bitboard idiom (popcount, masked shifts, word-parallel
//! AND/OR/XOR), replacing the former fixed `u128` representation that capped
//! programs at 128 qubits.
//!
//! Storage is **inline** (`[u64; 2]`, allocation-free) for registers up to
//! 128 qubits — today's workloads stay on exactly the code path they had
//! with `u128`, bit for bit — and spills to a heap word array beyond, so
//! 500–1000+ qubit Trotter programs compile without any per-bit scalar
//! loops.
//!
//! Semantics: a `QubitMask` is a *set of qubit indices*. Word count is a
//! capacity detail, not part of the value — `Eq`, `Ord` and `Hash` ignore
//! trailing zero words, and `Ord` matches the numeric order of the old
//! `u128` masks (most-significant word first), so every ordering-sensitive
//! consumer (term canonicalization, group indexing, tie-breaking sorts)
//! behaves identically at `n ≤ 128`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// Words stored inline (without heap allocation): masks over up to 128
/// qubits — the former `u128` regime — never allocate.
pub const INLINE_WORDS: usize = 2;

#[derive(Clone)]
enum Repr {
    Inline([u64; 2]),
    Heap(Box<[u64]>),
}

/// A packed, variable-width set of qubit indices.
///
/// # Examples
///
/// ```
/// use phoenix_pauli::QubitMask;
///
/// let mut m = QubitMask::zeros(300);
/// m.set_bit(0);
/// m.set_bit(299);
/// assert_eq!(m.count_ones(), 2);
/// assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![0, 299]);
/// assert!(m.bit(299) && !m.bit(150));
/// ```
#[derive(Clone)]
pub struct QubitMask {
    repr: Repr,
}

/// Number of words needed to hold `nbits` bits (at least the inline count).
#[inline]
pub fn words_for(nbits: usize) -> usize {
    nbits.div_ceil(WORD_BITS).max(INLINE_WORDS)
}

impl QubitMask {
    /// The empty mask with capacity for `nbits` bits.
    pub fn zeros(nbits: usize) -> Self {
        let w = words_for(nbits);
        if w <= INLINE_WORDS {
            QubitMask {
                repr: Repr::Inline([0; 2]),
            }
        } else {
            QubitMask {
                repr: Repr::Heap(vec![0u64; w].into_boxed_slice()),
            }
        }
    }

    /// The mask with the low `nbits` bits set — the variable-width
    /// generalization of `(1 << n) - 1`, well-defined at every word
    /// boundary (`n ∈ {0, 63, 64, 127, 128, …}`) with no shift overflow.
    pub fn ones(nbits: usize) -> Self {
        let mut m = QubitMask::zeros(nbits);
        let words = m.words_mut();
        let full = nbits / WORD_BITS;
        for w in &mut words[..full] {
            *w = u64::MAX;
        }
        let rem = nbits % WORD_BITS;
        if rem != 0 {
            words[full] = (1u64 << rem) - 1;
        }
        m
    }

    /// A mask from the low 128 bits of a `u128` (inline, allocation-free).
    pub fn from_u128(v: u128) -> Self {
        QubitMask {
            repr: Repr::Inline([v as u64, (v >> 64) as u64]),
        }
    }

    /// A mask with exactly bit `q` set.
    pub fn single(q: usize) -> Self {
        let mut m = QubitMask::zeros(q + 1);
        m.set_bit(q);
        m
    }

    /// A mask from little-endian words.
    pub fn from_words(words: Vec<u64>) -> Self {
        if words.len() <= INLINE_WORDS {
            let mut inline = [0u64; 2];
            inline[..words.len()].copy_from_slice(&words);
            QubitMask {
                repr: Repr::Inline(inline),
            }
        } else {
            QubitMask {
                repr: Repr::Heap(words.into_boxed_slice()),
            }
        }
    }

    /// The stored words, little-endian (word 0 holds qubits 0–63).
    #[inline]
    pub fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => w,
            Repr::Heap(w) => w,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(w) => w,
            Repr::Heap(w) => w,
        }
    }

    /// Word `i`, zero beyond the stored capacity.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        self.words().get(i).copied().unwrap_or(0)
    }

    /// Number of bits this mask can hold without growing.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words().len() * WORD_BITS
    }

    /// The low 128 bits as a `u128` (bits above 128, if any, are ignored —
    /// callers in dense-simulation paths only operate at small widths).
    #[inline]
    pub fn low_u128(&self) -> u128 {
        let w = self.words();
        (w[0] as u128) | ((w[1] as u128) << 64)
    }

    /// The value as a `u128`, or `None` if any bit at index ≥ 128 is set.
    pub fn try_to_u128(&self) -> Option<u128> {
        if self.words()[INLINE_WORDS..].iter().any(|&w| w != 0) {
            return None;
        }
        Some(self.low_u128())
    }

    /// Whether bit `q` is set (false beyond capacity).
    #[inline]
    pub fn bit(&self, q: usize) -> bool {
        self.words()
            .get(q / WORD_BITS)
            .is_some_and(|w| w >> (q % WORD_BITS) & 1 == 1)
    }

    /// Sets bit `q`, growing the word array if needed.
    #[inline]
    pub fn set_bit(&mut self, q: usize) {
        let w = q / WORD_BITS;
        if w >= self.words().len() {
            self.grow(w + 1);
        }
        self.words_mut()[w] |= 1u64 << (q % WORD_BITS);
    }

    /// Clears bit `q` (no-op beyond capacity).
    #[inline]
    pub fn clear_bit(&mut self, q: usize) {
        let w = q / WORD_BITS;
        if let Some(word) = self.words_mut().get_mut(w) {
            *word &= !(1u64 << (q % WORD_BITS));
        }
    }

    /// Sets bit `q` to `value`.
    #[inline]
    pub fn assign_bit(&mut self, q: usize, value: bool) {
        if value {
            self.set_bit(q);
        } else {
            self.clear_bit(q);
        }
    }

    fn grow(&mut self, words: usize) {
        let mut v = self.words().to_vec();
        v.resize(words, 0);
        self.repr = Repr::Heap(v.into_boxed_slice());
    }

    /// Population count, word-parallel.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.words().iter().map(|w| w.count_ones()).sum()
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.words().iter().all(|&w| w == 0)
    }

    /// The highest set bit index, if any.
    pub fn max_bit(&self) -> Option<usize> {
        let words = self.words();
        for (i, &w) in words.iter().enumerate().rev() {
            if w != 0 {
                return Some(i * WORD_BITS + (63 - w.leading_zeros() as usize));
            }
        }
        None
    }

    /// Whether the two masks share any set bit — `(a & b) ≠ 0` without
    /// materializing the intersection.
    #[inline]
    pub fn intersects(&self, other: &QubitMask) -> bool {
        self.words()
            .iter()
            .zip(other.words())
            .any(|(&a, &b)| a & b != 0)
    }

    /// Whether every set bit of `self` is set in `other`.
    #[inline]
    pub fn is_subset(&self, other: &QubitMask) -> bool {
        let (a, b) = (self.words(), other.words());
        a.iter().zip(b).all(|(&x, &y)| x & !y == 0)
            && a[b.len().min(a.len())..].iter().all(|&x| x == 0)
    }

    /// `popcount(self & other)` without materializing the intersection.
    #[inline]
    pub fn and_count(&self, other: &QubitMask) -> u32 {
        self.words()
            .iter()
            .zip(other.words())
            .map(|(&a, &b)| (a & b).count_ones())
            .sum()
    }

    /// `popcount(self | other)` without materializing the union.
    #[inline]
    pub fn or_count(&self, other: &QubitMask) -> u32 {
        let (a, b) = (self.words(), other.words());
        let short = a.len().min(b.len());
        let mut c = 0u32;
        for i in 0..short {
            c += (a[i] | b[i]).count_ones();
        }
        c + a[short..].iter().map(|w| w.count_ones()).sum::<u32>()
            + b[short..].iter().map(|w| w.count_ones()).sum::<u32>()
    }

    /// `popcount(a | b | c | d)` — the fused union popcount of the Eq. (6)
    /// pairwise support sum, one pass over the words.
    #[inline]
    pub fn or4_count(a: &QubitMask, b: &QubitMask, c: &QubitMask, d: &QubitMask) -> u32 {
        let n = a
            .words()
            .len()
            .max(b.words().len())
            .max(c.words().len())
            .max(d.words().len());
        let mut count = 0u32;
        for i in 0..n {
            count += (a.word(i) | b.word(i) | c.word(i) | d.word(i)).count_ones();
        }
        count
    }

    /// The parity of `popcount(x1 & z2) + popcount(z1 & x2)` — `true` means
    /// *odd* symplectic product, i.e. the strings **anticommute**. This is
    /// the word-parallel commutation kernel.
    #[inline]
    pub fn symplectic_parity(
        x1: &QubitMask,
        z1: &QubitMask,
        x2: &QubitMask,
        z2: &QubitMask,
    ) -> bool {
        (x1.and_count(z2) + z1.and_count(x2)) % 2 == 1
    }

    /// In-place union.
    #[inline]
    pub fn or_with(&mut self, other: &QubitMask) {
        if other.words().len() > self.words().len() {
            self.grow(other.words().len());
        }
        for (a, &b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// In-place intersection.
    #[inline]
    pub fn and_with(&mut self, other: &QubitMask) {
        let ow = other.words();
        for (i, a) in self.words_mut().iter_mut().enumerate() {
            *a &= ow.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place symmetric difference.
    #[inline]
    pub fn xor_with(&mut self, other: &QubitMask) {
        if other.words().len() > self.words().len() {
            self.grow(other.words().len());
        }
        for (a, &b) in self.words_mut().iter_mut().zip(other.words()) {
            *a ^= b;
        }
    }

    /// In-place `self &= !other`.
    #[inline]
    pub fn andnot_with(&mut self, other: &QubitMask) {
        for (a, &b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= !b;
        }
    }

    /// Iterator over the set bit indices in increasing order — the
    /// word-parallel replacement for per-qubit `mask >> q & 1` scans
    /// (`trailing_zeros` + clear-lowest per step).
    pub fn iter_ones(&self) -> Ones<'_> {
        let words = self.words();
        Ones {
            words,
            current: words.first().copied().unwrap_or(0),
            word_index: 0,
        }
    }

    /// The set bit indices, in increasing order.
    pub fn to_indices(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count_ones() as usize);
        out.extend(self.iter_ones());
        out
    }
}

/// Iterator over set bits of a [`QubitMask`].
pub struct Ones<'a> {
    words: &'a [u64],
    current: u64,
    word_index: usize,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_index += 1;
            self.current = *self.words.get(self.word_index)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_index * WORD_BITS + bit)
    }
}

/// Trimmed view: words with trailing zeros dropped — the canonical value
/// `Eq`/`Ord`/`Hash` operate on.
#[inline]
fn trimmed(words: &[u64]) -> &[u64] {
    let mut len = words.len();
    while len > 0 && words[len - 1] == 0 {
        len -= 1;
    }
    &words[..len]
}

impl PartialEq for QubitMask {
    fn eq(&self, other: &Self) -> bool {
        trimmed(self.words()) == trimmed(other.words())
    }
}

impl Eq for QubitMask {}

impl PartialOrd for QubitMask {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QubitMask {
    /// Numeric order (most-significant word first) — identical to the
    /// `u128` ordering of the pre-packed representation at `n ≤ 128`.
    fn cmp(&self, other: &Self) -> Ordering {
        let (a, b) = (trimmed(self.words()), trimmed(other.words()));
        a.len()
            .cmp(&b.len())
            .then_with(|| a.iter().rev().cmp(b.iter().rev()))
    }
}

impl Hash for QubitMask {
    fn hash<H: Hasher>(&self, state: &mut H) {
        let t = trimmed(self.words());
        state.write_usize(t.len());
        for &w in t {
            state.write_u64(w);
        }
    }
}

fn fmt_mask(words: &[u64], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "0x")?;
    let t = trimmed(words);
    if t.is_empty() {
        return write!(f, "0");
    }
    for (i, w) in t.iter().enumerate().rev() {
        if i == t.len() - 1 {
            write!(f, "{w:x}")?;
        } else {
            write!(f, "{w:016x}")?;
        }
    }
    Ok(())
}

impl fmt::Debug for QubitMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_mask(self.words(), f)
    }
}

impl fmt::Display for QubitMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_mask(self.words(), f)
    }
}

impl std::ops::BitAnd for &QubitMask {
    type Output = QubitMask;
    fn bitand(self, rhs: &QubitMask) -> QubitMask {
        let mut out = self.clone();
        out.and_with(rhs);
        out
    }
}

impl std::ops::BitOr for &QubitMask {
    type Output = QubitMask;
    fn bitor(self, rhs: &QubitMask) -> QubitMask {
        let mut out = self.clone();
        out.or_with(rhs);
        out
    }
}

impl std::ops::BitXor for &QubitMask {
    type Output = QubitMask;
    fn bitxor(self, rhs: &QubitMask) -> QubitMask {
        let mut out = self.clone();
        out.xor_with(rhs);
        out
    }
}

impl std::ops::BitAnd for QubitMask {
    type Output = QubitMask;
    fn bitand(mut self, rhs: QubitMask) -> QubitMask {
        self.and_with(&rhs);
        self
    }
}

impl std::ops::BitOr for QubitMask {
    type Output = QubitMask;
    fn bitor(mut self, rhs: QubitMask) -> QubitMask {
        self.or_with(&rhs);
        self
    }
}

impl std::ops::BitXor for QubitMask {
    type Output = QubitMask;
    fn bitxor(mut self, rhs: QubitMask) -> QubitMask {
        self.xor_with(&rhs);
        self
    }
}

impl Default for QubitMask {
    fn default() -> Self {
        QubitMask::zeros(0)
    }
}

impl From<u128> for QubitMask {
    fn from(v: u128) -> Self {
        QubitMask::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_handles_word_boundaries() {
        for n in [0, 1, 63, 64, 65, 127, 128, 129, 191, 192, 256, 500, 512] {
            let m = QubitMask::ones(n);
            assert_eq!(m.count_ones() as usize, n, "ones({n})");
            if n > 0 {
                assert!(m.bit(n - 1), "top bit of ones({n})");
            }
            assert!(!m.bit(n), "bit {n} of ones({n}) must be clear");
        }
    }

    #[test]
    fn ones_matches_u128_mask_below() {
        for n in [0, 1, 5, 63, 64, 100, 127, 128] {
            let reference = if n >= 128 {
                u128::MAX
            } else {
                (1u128 << n) - 1
            };
            assert_eq!(QubitMask::ones(n).try_to_u128(), Some(reference), "{n}");
        }
    }

    #[test]
    fn inline_storage_up_to_128() {
        assert!(matches!(QubitMask::zeros(128).repr, Repr::Inline(_)));
        assert!(matches!(QubitMask::zeros(129).repr, Repr::Heap(_)));
        assert!(matches!(
            QubitMask::from_u128(u128::MAX).repr,
            Repr::Inline(_)
        ));
    }

    #[test]
    fn set_bit_grows() {
        let mut m = QubitMask::zeros(4);
        m.set_bit(300);
        assert!(m.bit(300));
        assert_eq!(m.count_ones(), 1);
        m.clear_bit(300);
        assert!(m.is_zero());
    }

    #[test]
    fn eq_ignores_capacity() {
        let mut wide = QubitMask::zeros(512);
        wide.set_bit(3);
        let narrow = QubitMask::from_u128(0b1000);
        assert_eq!(wide, narrow);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |m: &QubitMask| {
            let mut s = DefaultHasher::new();
            m.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&wide), h(&narrow));
    }

    #[test]
    fn ord_matches_u128_numeric_order() {
        let vals: Vec<u128> = vec![
            0,
            1,
            2,
            3,
            u64::MAX as u128,
            1 << 64,
            (1 << 64) | 1,
            u128::MAX,
        ];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(
                    QubitMask::from_u128(a).cmp(&QubitMask::from_u128(b)),
                    a.cmp(&b),
                    "{a} vs {b}"
                );
            }
        }
        // Heap vs inline capacity does not perturb the order.
        let mut big = QubitMask::zeros(512);
        big.set_bit(1);
        assert_eq!(big.cmp(&QubitMask::from_u128(2)), Ordering::Equal);
        big.set_bit(400);
        assert_eq!(big.cmp(&QubitMask::from_u128(2)), Ordering::Greater);
    }

    #[test]
    fn iter_ones_crosses_words() {
        let mut m = QubitMask::zeros(300);
        for q in [0, 63, 64, 127, 128, 255, 299] {
            m.set_bit(q);
        }
        assert_eq!(m.to_indices(), vec![0, 63, 64, 127, 128, 255, 299]);
    }

    #[test]
    fn fused_kernels_match_materialized_ops() {
        let a = QubitMask::from_u128(0b1100_1010);
        let b = QubitMask::from_u128(0b1010_0110);
        assert_eq!(a.and_count(&b), (&a & &b).count_ones());
        assert_eq!(a.or_count(&b), (&a | &b).count_ones());
        assert!(a.intersects(&b));
        let c = QubitMask::from_u128(0b0001);
        assert!(!a.intersects(&c));
        assert_eq!(
            QubitMask::or4_count(&a, &b, &c, &QubitMask::zeros(0)),
            (&(&a | &b) | &c).count_ones()
        );
    }

    #[test]
    fn or_count_handles_unequal_lengths() {
        let mut long = QubitMask::zeros(512);
        long.set_bit(400);
        long.set_bit(2);
        let short = QubitMask::from_u128(0b101);
        assert_eq!(long.or_count(&short), 3);
        assert_eq!(short.or_count(&long), 3);
        assert!(!short.is_subset(&long));
        assert!(QubitMask::from_u128(0b100).is_subset(&long));
    }

    #[test]
    fn symplectic_parity_matches_scalar() {
        // X vs Z on the same qubit anticommute.
        let x = QubitMask::from_u128(1);
        let z = QubitMask::from_u128(1);
        let zero = QubitMask::zeros(1);
        assert!(QubitMask::symplectic_parity(&x, &zero, &zero, &z));
        // X vs X commute.
        assert!(!QubitMask::symplectic_parity(&x, &zero, &x, &zero));
    }

    #[test]
    fn xor_and_andnot() {
        let mut a = QubitMask::from_u128(0b1100);
        a.xor_with(&QubitMask::from_u128(0b1010));
        assert_eq!(a.try_to_u128(), Some(0b0110));
        a.andnot_with(&QubitMask::from_u128(0b0010));
        assert_eq!(a.try_to_u128(), Some(0b0100));
    }

    #[test]
    fn max_bit_and_display() {
        assert_eq!(QubitMask::zeros(64).max_bit(), None);
        assert_eq!(QubitMask::single(129).max_bit(), Some(129));
        assert_eq!(QubitMask::from_u128(0).to_string(), "0x0");
        assert_eq!(QubitMask::from_u128(0xff).to_string(), "0xff");
        let wide = QubitMask::single(64);
        assert_eq!(wide.to_string(), "0x10000000000000000");
    }

    #[test]
    fn try_to_u128_detects_overflow() {
        assert_eq!(QubitMask::single(127).try_to_u128(), Some(1u128 << 127));
        assert_eq!(QubitMask::single(128).try_to_u128(), None);
    }
}
