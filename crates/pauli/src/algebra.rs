//! Linear combinations of Pauli strings with complex coefficients.
//!
//! Fermion-to-qubit encodings (Jordan–Wigner, Bravyi–Kitaev) express creation
//! and annihilation operators as such combinations; products and sums of
//! those yield the Pauli-string Hamiltonians and UCCSD generators the
//! compiler consumes.

use crate::mask::QubitMask;
use crate::PauliString;
use phoenix_mathkit::Complex;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::fmt;

/// A single weighted Pauli string.
#[derive(Debug, Clone, PartialEq)]
pub struct PauliTerm {
    /// The Pauli string.
    pub string: PauliString,
    /// Its complex coefficient.
    pub coeff: Complex,
}

/// A linear combination of Pauli strings over a fixed qubit register, with
/// phase-exact multiplication.
///
/// Terms are kept canonical (one entry per string, deterministic order) so
/// that generated benchmarks are reproducible.
///
/// # Examples
///
/// ```
/// use phoenix_mathkit::Complex;
/// use phoenix_pauli::{PauliPolynomial, PauliString};
///
/// // (X + Z)/√2 squared is the identity: X² + XZ + ZX + Z² = 2I.
/// let mut p = PauliPolynomial::zero(1);
/// p.add_term("X".parse::<PauliString>()?, Complex::from_re(1.0));
/// p.add_term("Z".parse()?, Complex::from_re(1.0));
/// let sq = p.mul(&p);
/// assert_eq!(sq.num_terms(), 1); // XZ and ZX cancel
/// # Ok::<(), phoenix_pauli::ParsePauliStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PauliPolynomial {
    n: usize,
    terms: BTreeMap<(QubitMask, QubitMask), Complex>,
}

impl PauliPolynomial {
    /// The zero polynomial over `n` qubits.
    pub fn zero(n: usize) -> Self {
        PauliPolynomial {
            n,
            terms: BTreeMap::new(),
        }
    }

    /// The polynomial `c · I` over `n` qubits.
    pub fn scalar(n: usize, c: Complex) -> Self {
        let mut p = PauliPolynomial::zero(n);
        p.add_term(PauliString::identity(n), c);
        p
    }

    /// A polynomial consisting of a single term.
    ///
    /// # Panics
    ///
    /// Panics if the string's qubit count differs from `n`.
    pub fn term(n: usize, string: PauliString, coeff: Complex) -> Self {
        let mut p = PauliPolynomial::zero(n);
        p.add_term(string, coeff);
        p
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of stored terms (zero-coefficient terms are pruned on insert).
    #[inline]
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Whether the polynomial has no terms.
    #[inline]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// Adds `coeff · string`, merging with any existing term.
    ///
    /// # Panics
    ///
    /// Panics if the string's qubit count differs from the polynomial's.
    pub fn add_term(&mut self, string: PauliString, coeff: Complex) {
        assert_eq!(
            string.num_qubits(),
            self.n,
            "term qubit count must match polynomial"
        );
        let key = (string.x_mask().clone(), string.z_mask().clone());
        match self.terms.entry(key) {
            Entry::Occupied(mut e) => {
                *e.get_mut() += coeff;
                if e.get().abs() < 1e-14 {
                    e.remove();
                }
            }
            Entry::Vacant(e) => {
                if coeff.abs() >= 1e-14 {
                    e.insert(coeff);
                }
            }
        }
    }

    /// Iterates over the terms in canonical (mask-sorted) order.
    pub fn iter(&self) -> impl Iterator<Item = PauliTerm> + '_ {
        self.terms.iter().map(|((x, z), &c)| PauliTerm {
            string: PauliString::from_packed(self.n, x.clone(), z.clone()),
            coeff: c,
        })
    }

    /// Sum of two polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn add(&self, rhs: &PauliPolynomial) -> PauliPolynomial {
        assert_eq!(self.n, rhs.n, "qubit counts must match");
        let mut out = self.clone();
        for t in rhs.iter() {
            out.add_term(t.string, t.coeff);
        }
        out
    }

    /// Difference of two polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn sub(&self, rhs: &PauliPolynomial) -> PauliPolynomial {
        self.add(&rhs.scale(-Complex::ONE))
    }

    /// Scales every coefficient by `c`.
    pub fn scale(&self, c: Complex) -> PauliPolynomial {
        let mut out = PauliPolynomial::zero(self.n);
        for t in self.iter() {
            out.add_term(t.string, t.coeff * c);
        }
        out
    }

    /// Phase-exact product of two polynomials.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn mul(&self, rhs: &PauliPolynomial) -> PauliPolynomial {
        assert_eq!(self.n, rhs.n, "qubit counts must match");
        const PHASES: [Complex; 4] = [
            Complex::new(1.0, 0.0),
            Complex::new(0.0, 1.0),
            Complex::new(-1.0, 0.0),
            Complex::new(0.0, -1.0),
        ];
        let mut out = PauliPolynomial::zero(self.n);
        for a in self.iter() {
            for b in rhs.iter() {
                let (p, k) = a.string.mul(&b.string);
                out.add_term(p, a.coeff * b.coeff * PHASES[k as usize]);
            }
        }
        out
    }

    /// Hermitian conjugate (Pauli strings are Hermitian, so only the
    /// coefficients conjugate).
    pub fn dagger(&self) -> PauliPolynomial {
        let mut out = PauliPolynomial::zero(self.n);
        for t in self.iter() {
            out.add_term(t.string, t.coeff.conj());
        }
        out
    }

    /// Drops terms with `|coeff| < eps`.
    pub fn pruned(&self, eps: f64) -> PauliPolynomial {
        let mut out = PauliPolynomial::zero(self.n);
        for t in self.iter() {
            if t.coeff.abs() >= eps {
                out.add_term(t.string, t.coeff);
            }
        }
        out
    }

    /// Extracts real-coefficient terms, asserting the polynomial is
    /// Hermitian within `tol`; identity terms (global phases) are dropped.
    ///
    /// This is the hand-off format to the compiler: a list of Pauli
    /// exponentiation angles.
    ///
    /// # Panics
    ///
    /// Panics if any coefficient has imaginary part exceeding `tol` — use
    /// [`PauliPolynomial::try_real_terms`] for graceful rejection through
    /// the typed error boundary.
    pub fn real_terms(&self, tol: f64) -> Vec<(PauliString, f64)> {
        self.try_real_terms(tol).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PauliPolynomial::real_terms`]: returns a
    /// [`NonHermitianError`] naming the offending term instead of
    /// panicking, so callers behind `phoenix-core`'s typed error boundary
    /// can surface malformed operators as `PhoenixError`s.
    ///
    /// # Errors
    ///
    /// Returns [`NonHermitianError`] for the first term whose coefficient
    /// has imaginary part exceeding `tol`.
    pub fn try_real_terms(&self, tol: f64) -> Result<Vec<(PauliString, f64)>, NonHermitianError> {
        self.iter()
            .filter(|t| !t.string.is_identity())
            .map(|t| {
                if t.coeff.im.abs() > tol {
                    Err(NonHermitianError {
                        term: t.string.label(),
                        coeff: t.coeff,
                        tol,
                    })
                } else {
                    Ok((t.string, t.coeff.re))
                }
            })
            .collect()
    }
}

/// A polynomial handed to the compiler was not Hermitian within tolerance:
/// some term's coefficient kept a significant imaginary part.
#[derive(Debug, Clone, PartialEq)]
pub struct NonHermitianError {
    /// Label of the offending Pauli string.
    pub term: String,
    /// Its complex coefficient.
    pub coeff: Complex,
    /// The tolerance the imaginary part exceeded.
    pub tol: f64,
}

impl fmt::Display for NonHermitianError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "non-hermitian term {} with coeff {} (|Im| > {:e})",
            self.term, self.coeff, self.tol
        )
    }
}

impl std::error::Error for NonHermitianError {}

impl fmt::Display for PauliPolynomial {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "({})·{}", t.coeff, t.string)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(l: &str) -> PauliString {
        l.parse().unwrap()
    }

    #[test]
    fn add_merges_and_cancels() {
        let mut p = PauliPolynomial::zero(2);
        p.add_term(ps("XY"), Complex::from_re(1.0));
        p.add_term(ps("XY"), Complex::from_re(2.0));
        assert_eq!(p.num_terms(), 1);
        p.add_term(ps("XY"), Complex::from_re(-3.0));
        assert!(p.is_zero());
    }

    #[test]
    fn multiplication_tracks_phases() {
        // (iXZ) = Y: build X·Z and compare against Y with phase -i.
        let x = PauliPolynomial::term(1, ps("X"), Complex::ONE);
        let z = PauliPolynomial::term(1, ps("Z"), Complex::ONE);
        let xz = x.mul(&z);
        let t: Vec<_> = xz.iter().collect();
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].string, ps("Y"));
        assert!(t[0].coeff.approx_eq(-Complex::I, 1e-15));
    }

    #[test]
    fn anticommutator_cancellation() {
        // {X, Z} = 0 so (X+Z)² = 2I.
        let mut p = PauliPolynomial::zero(1);
        p.add_term(ps("X"), Complex::ONE);
        p.add_term(ps("Z"), Complex::ONE);
        let sq = p.mul(&p);
        let t: Vec<_> = sq.iter().collect();
        assert_eq!(t.len(), 1);
        assert!(t[0].string.is_identity());
        assert!(t[0].coeff.approx_eq(Complex::from_re(2.0), 1e-15));
    }

    #[test]
    fn product_matches_matrices() {
        let mut a = PauliPolynomial::zero(2);
        a.add_term(ps("XY"), Complex::new(0.5, 0.25));
        a.add_term(ps("ZI"), Complex::from_re(-1.0));
        let mut b = PauliPolynomial::zero(2);
        b.add_term(ps("YZ"), Complex::new(0.0, 1.0));
        b.add_term(ps("IX"), Complex::from_re(0.75));
        let prod = a.mul(&b);

        let mat = |p: &PauliPolynomial| {
            let mut m = phoenix_mathkit::CMatrix::zeros(4, 4);
            for t in p.iter() {
                m = &m + &t.string.to_matrix().scale(t.coeff);
            }
            m
        };
        assert!(mat(&prod).approx_eq(&mat(&a).matmul(&mat(&b)), 1e-13));
    }

    #[test]
    fn dagger_of_antihermitian() {
        // T = i·XY is anti-Hermitian: T† = -T.
        let t = PauliPolynomial::term(2, ps("XY"), Complex::I);
        assert_eq!(t.dagger(), t.scale(-Complex::ONE));
    }

    #[test]
    fn real_terms_drops_identity() {
        let mut p = PauliPolynomial::zero(2);
        p.add_term(ps("II"), Complex::from_re(3.0));
        p.add_term(ps("ZZ"), Complex::from_re(0.5));
        let terms = p.real_terms(1e-12);
        assert_eq!(terms, vec![(ps("ZZ"), 0.5)]);
    }

    #[test]
    #[should_panic(expected = "non-hermitian")]
    fn real_terms_rejects_imaginary() {
        let p = PauliPolynomial::term(1, ps("X"), Complex::I);
        let _ = p.real_terms(1e-12);
    }

    #[test]
    fn try_real_terms_returns_a_typed_error() {
        let p = PauliPolynomial::term(1, ps("X"), Complex::I);
        let err = p.try_real_terms(1e-12).unwrap_err();
        assert_eq!(err.term, "X");
        assert!(err.to_string().contains("non-hermitian term X"));

        let mut ok = PauliPolynomial::zero(2);
        ok.add_term(ps("ZZ"), Complex::from_re(0.5));
        assert_eq!(ok.try_real_terms(1e-12).unwrap(), vec![(ps("ZZ"), 0.5)]);
    }

    #[test]
    fn pruned_removes_small_terms() {
        let mut p = PauliPolynomial::zero(1);
        p.add_term(ps("X"), Complex::from_re(1e-9));
        p.add_term(ps("Z"), Complex::from_re(1.0));
        assert_eq!(p.pruned(1e-6).num_terms(), 1);
    }

    #[test]
    fn display_is_nonempty() {
        let p = PauliPolynomial::term(1, ps("X"), Complex::ONE);
        assert!(p.to_string().contains('X'));
        assert_eq!(PauliPolynomial::zero(1).to_string(), "0");
    }
}
