//! Multi-qubit Pauli strings over variable-width packed bit masks.

use crate::mask::QubitMask;
use crate::Pauli;
use phoenix_mathkit::{CMatrix, Complex};
use std::fmt;
use std::str::FromStr;

/// An `n`-qubit Pauli string stored as a pair of packed bit masks in the
/// binary symplectic encoding (`X → [1|0]`, `Z → [0|1]`, `Y → [1|1]`).
///
/// Qubit `q` corresponds to bit `q`; the textual label lists qubit 0 first,
/// matching the paper's `σ₀ ⊗ ⋯ ⊗ σ_{n−1}` ordering. Masks are stored
/// inline (no heap allocation) for `n ≤ 128` and spill to heap word arrays
/// beyond — see [`QubitMask`].
///
/// # Examples
///
/// ```
/// use phoenix_pauli::{Pauli, PauliString};
///
/// let p: PauliString = "XIZ".parse()?;
/// assert_eq!(p.get(0), Pauli::X);
/// assert_eq!(p.get(2), Pauli::Z);
/// assert_eq!(p.weight(), 2);
/// # Ok::<(), phoenix_pauli::ParsePauliStringError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PauliString {
    n: u32,
    x: QubitMask,
    z: QubitMask,
}

/// The maximum register width the compiler accepts. This is a sanity bound
/// against absurd allocations, not a representation limit: masks are packed
/// `u64` word arrays that scale to any width.
pub const MAX_QUBITS: usize = 1 << 16;

/// A requested register width exceeded [`MAX_QUBITS`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WidthError {
    /// The offending width.
    pub num_qubits: usize,
}

impl fmt::Display for WidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "register width {} exceeds the supported maximum of {MAX_QUBITS} qubits",
            self.num_qubits
        )
    }
}

impl std::error::Error for WidthError {}

impl PauliString {
    /// Creates the `n`-qubit identity string.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS`; use [`PauliString::try_identity`] for a
    /// typed error.
    pub fn identity(n: usize) -> Self {
        Self::try_identity(n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PauliString::identity`].
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] if `n > MAX_QUBITS`.
    pub fn try_identity(n: usize) -> Result<Self, WidthError> {
        if n > MAX_QUBITS {
            return Err(WidthError { num_qubits: n });
        }
        Ok(PauliString {
            n: n as u32,
            x: QubitMask::zeros(n),
            z: QubitMask::zeros(n),
        })
    }

    /// Creates a string from raw symplectic masks over the low 128 qubits.
    /// Wider strings are built with [`PauliString::from_packed`].
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS` or if a mask has bits at or above `n`.
    pub fn from_masks(n: usize, x: u128, z: u128) -> Self {
        Self::from_packed(n, QubitMask::from_u128(x), QubitMask::from_u128(z))
    }

    /// Creates a string from packed symplectic masks.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS` or if a mask has bits at or above `n`;
    /// use [`PauliString::try_from_packed`] for a typed error.
    pub fn from_packed(n: usize, x: QubitMask, z: QubitMask) -> Self {
        Self::try_from_packed(n, x, z).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`PauliString::from_packed`]: out-of-range widths and masks
    /// with support at or above `n` come back as a [`WidthError`] instead
    /// of a panic, so `try_compile*` callers get an error on bad input.
    ///
    /// # Errors
    ///
    /// Returns [`WidthError`] if `n > MAX_QUBITS` or a mask has bits at or
    /// above `n` (the error carries the smallest width that would fit).
    pub fn try_from_packed(n: usize, x: QubitMask, z: QubitMask) -> Result<Self, WidthError> {
        if n > MAX_QUBITS {
            return Err(WidthError { num_qubits: n });
        }
        let top = x.max_bit().max(z.max_bit());
        if let Some(top) = top {
            if top >= n {
                return Err(WidthError {
                    num_qubits: top + 1,
                });
            }
        }
        Ok(PauliString { n: n as u32, x, z })
    }

    /// Creates an `n`-qubit string that is `p` on qubit `q` and identity
    /// elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n` or `n > MAX_QUBITS`.
    pub fn single(n: usize, q: usize, p: Pauli) -> Self {
        let mut s = PauliString::identity(n);
        s.set(q, p);
        s
    }

    /// Creates an `n`-qubit string from sparse `(qubit, Pauli)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of range.
    pub fn from_sparse(n: usize, pairs: &[(usize, Pauli)]) -> Self {
        let mut s = PauliString::identity(n);
        for &(q, p) in pairs {
            s.set(q, p);
        }
        s
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n as usize
    }

    /// The X-block bit mask.
    #[inline]
    pub fn x_mask(&self) -> &QubitMask {
        &self.x
    }

    /// The Z-block bit mask.
    #[inline]
    pub fn z_mask(&self) -> &QubitMask {
        &self.z
    }

    /// The Pauli acting on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    #[inline]
    pub fn get(&self, q: usize) -> Pauli {
        assert!(q < self.n as usize, "qubit {q} out of range");
        Pauli::from_xz(self.x.bit(q), self.z.bit(q))
    }

    /// Sets the Pauli acting on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q >= self.num_qubits()`.
    #[inline]
    pub fn set(&mut self, q: usize, p: Pauli) {
        assert!(q < self.n as usize, "qubit {q} out of range");
        self.x.assign_bit(q, p.x_bit());
        self.z.assign_bit(q, p.z_bit());
    }

    /// Number of qubits acted on non-trivially (word-parallel popcount).
    #[inline]
    pub fn weight(&self) -> usize {
        self.x.or_count(&self.z) as usize
    }

    /// Whether the string is the identity.
    #[inline]
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.z.is_zero()
    }

    /// Bit mask of the non-trivially acted qubits.
    #[inline]
    pub fn support_mask(&self) -> QubitMask {
        &self.x | &self.z
    }

    /// The non-trivially acted qubits in increasing order.
    pub fn support(&self) -> Vec<usize> {
        self.support_mask().to_indices()
    }

    /// Whether two strings commute (symplectic inner product is even),
    /// computed word-parallel over the packed masks.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn commutes(&self, other: &PauliString) -> bool {
        assert_eq!(self.n, other.n, "qubit counts must match");
        !QubitMask::symplectic_parity(&self.x, &self.z, &other.x, &other.z)
    }

    /// Multiplies two strings, returning `(product, k)` with
    /// `self · other = i^k · product`.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn mul(&self, other: &PauliString) -> (PauliString, u8) {
        assert_eq!(self.n, other.n, "qubit counts must match");
        let mut x3 = self.x.clone();
        x3.xor_with(&other.x);
        let mut z3 = self.z.clone();
        z3.xor_with(&other.z);
        // Per-qubit phase exponents, summed mod 4 (see Pauli::mul).
        let k = self.x.and_count(&self.z) as i64
            + other.x.and_count(&other.z) as i64
            + 2 * self.z.and_count(&other.x) as i64
            - x3.and_count(&z3) as i64;
        (
            PauliString {
                n: self.n,
                x: x3,
                z: z3,
            },
            k.rem_euclid(4) as u8,
        )
    }

    /// Restricts the string to the qubits in `keep` (in the given order),
    /// producing a `keep.len()`-qubit string.
    ///
    /// # Panics
    ///
    /// Panics if any index in `keep` is out of range.
    pub fn restrict(&self, keep: &[usize]) -> PauliString {
        let mut out = PauliString::identity(keep.len());
        for (new_q, &old_q) in keep.iter().enumerate() {
            out.set(new_q, self.get(old_q));
        }
        out
    }

    /// Embeds this string into a larger register, mapping local qubit `i`
    /// onto global qubit `placement[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `placement.len() != self.num_qubits()` or any target index
    /// is out of range.
    pub fn embed(&self, n: usize, placement: &[usize]) -> PauliString {
        assert_eq!(
            placement.len(),
            self.num_qubits(),
            "placement must cover every local qubit"
        );
        let mut out = PauliString::identity(n);
        for (i, &q) in placement.iter().enumerate() {
            out.set(q, self.get(i));
        }
        out
    }

    /// Dense `2ⁿ × 2ⁿ` matrix representation (little-endian qubit order:
    /// qubit 0 is the least-significant bit of the basis index).
    ///
    /// Intended for verification on small `n`; cost is `O(4ⁿ)`.
    pub fn to_matrix(&self) -> CMatrix {
        let n = self.num_qubits();
        let dim = 1usize << n;
        let mut m = CMatrix::zeros(dim, dim);
        let (x, z) = (self.x.low_u128(), self.z.low_u128());
        // P|b⟩ = phase(b) |b ⊕ x⟩ with phase from Z and Y parts.
        for b in 0..dim {
            let target = b ^ (x as usize);
            // Z contributes (-1)^{b·z}; Y contributes an extra i per Y with x-flip.
            let zpar = ((b as u128) & z).count_ones() % 2;
            let ycnt = (x & z).count_ones() % 4;
            // pauli(x,z) = i^{x z} X^x Z^z acting on |b>: Z first then X.
            let mut phase = if zpar == 1 {
                -Complex::ONE
            } else {
                Complex::ONE
            };
            for _ in 0..ycnt {
                phase *= Complex::I;
            }
            m[(target, b)] = phase;
        }
        m
    }

    /// The textual label, qubit 0 first.
    pub fn label(&self) -> String {
        (0..self.num_qubits())
            .map(|q| self.get(q).to_char())
            .collect()
    }
}

/// Error returned when parsing a [`PauliString`] label fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliStringError {
    offending: char,
}

impl fmt::Display for ParsePauliStringError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid pauli character {:?}; expected one of I, X, Y, Z",
            self.offending
        )
    }
}

impl std::error::Error for ParsePauliStringError {}

impl FromStr for PauliString {
    type Err = ParsePauliStringError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut out = PauliString::identity(s.chars().count());
        for (q, c) in s.chars().enumerate() {
            let p = Pauli::from_char(c).ok_or(ParsePauliStringError { offending: c })?;
            out.set(q, p);
        }
        Ok(out)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for label in ["XIZY", "IIII", "Y", "ZZXXYYII"] {
            let p: PauliString = label.parse().unwrap();
            assert_eq!(p.label(), label);
            assert_eq!(p.to_string(), label);
        }
    }

    #[test]
    fn parse_rejects_bad_char() {
        let err = "XQZ".parse::<PauliString>().unwrap_err();
        assert!(err.to_string().contains("'Q'"));
    }

    #[test]
    fn weight_and_support() {
        let p: PauliString = "XIZIY".parse().unwrap();
        assert_eq!(p.weight(), 3);
        assert_eq!(p.support(), vec![0, 2, 4]);
        assert!(!p.is_identity());
        assert!(PauliString::identity(5).is_identity());
    }

    #[test]
    fn multiplication_matches_matrices() {
        let cases = [("XY", "YX"), ("ZZ", "XI"), ("XZ", "ZX"), ("YY", "XZ")];
        for (a, b) in cases {
            let pa: PauliString = a.parse().unwrap();
            let pb: PauliString = b.parse().unwrap();
            let (prod, k) = pa.mul(&pb);
            let phase = [Complex::ONE, Complex::I, -Complex::ONE, -Complex::I][k as usize];
            let lhs = pa.to_matrix().matmul(&pb.to_matrix());
            let rhs = prod.to_matrix().scale(phase);
            assert!(lhs.approx_eq(&rhs, 1e-14), "{a}·{b}");
        }
    }

    #[test]
    fn commutation_matches_matrices() {
        let labels = ["XX", "XZ", "ZZ", "YI", "IY", "YZ", "XY"];
        for a in labels {
            for b in labels {
                let pa: PauliString = a.parse().unwrap();
                let pb: PauliString = b.parse().unwrap();
                let ab = pa.to_matrix().matmul(&pb.to_matrix());
                let ba = pb.to_matrix().matmul(&pa.to_matrix());
                assert_eq!(pa.commutes(&pb), ab.approx_eq(&ba, 1e-14), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn single_qubit_matrix_is_pauli_matrix() {
        for &p in &Pauli::ALL {
            let s = PauliString::single(1, 0, p);
            assert!(s.to_matrix().approx_eq(&p.to_matrix(), 1e-15));
        }
    }

    #[test]
    fn two_qubit_matrix_is_kron() {
        // Little-endian: qubit 0 is the LSB, so "XZ" = Z ⊗ X as a matrix.
        let s: PauliString = "XZ".parse().unwrap();
        let expect = Pauli::Z.to_matrix().kron(&Pauli::X.to_matrix());
        assert!(s.to_matrix().approx_eq(&expect, 1e-15));
    }

    #[test]
    fn restrict_and_embed_roundtrip() {
        let p: PauliString = "IXIZY".parse().unwrap();
        let keep = p.support();
        let small = p.restrict(&keep);
        assert_eq!(small.label(), "XZY");
        let back = small.embed(5, &keep);
        assert_eq!(back, p);
    }

    #[test]
    fn masks_are_consistent() {
        let p: PauliString = "XYZI".parse().unwrap();
        assert_eq!(p.x_mask().try_to_u128(), Some(0b0011));
        assert_eq!(p.z_mask().try_to_u128(), Some(0b0110));
        let q = PauliString::from_masks(4, 0b0011, 0b0110);
        assert_eq!(p, q);
    }

    #[test]
    fn wide_strings_work_beyond_128_qubits() {
        let n = 500;
        let mut p = PauliString::identity(n);
        p.set(0, Pauli::X);
        p.set(499, Pauli::Y);
        p.set(250, Pauli::Z);
        assert_eq!(p.weight(), 3);
        assert_eq!(p.support(), vec![0, 250, 499]);
        assert_eq!(p.get(499), Pauli::Y);
        let mut q = PauliString::identity(n);
        q.set(499, Pauli::Z);
        // Y on qubit 499 vs Z on qubit 499: anticommute.
        assert!(!p.commutes(&q));
        let (prod, _) = p.mul(&q);
        assert_eq!(prod.get(499), Pauli::X);
    }

    #[test]
    fn try_constructors_reject_bad_widths() {
        assert!(PauliString::try_identity(MAX_QUBITS).is_ok());
        let err = PauliString::try_identity(MAX_QUBITS + 1).unwrap_err();
        assert_eq!(err.num_qubits, MAX_QUBITS + 1);
        assert!(err.to_string().contains("exceeds"));
        // Support above n is rejected, reporting the needed width.
        let err =
            PauliString::try_from_packed(3, QubitMask::single(5), QubitMask::zeros(3)).unwrap_err();
        assert_eq!(err.num_qubits, 6);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let p = PauliString::identity(3);
        let _ = p.get(3);
    }
}
