//! The single-qubit Pauli operator.

use phoenix_mathkit::{CMatrix, Complex};
use std::fmt;

/// A single-qubit Pauli operator.
///
/// The binary symplectic encoding used throughout the paper maps
/// `I → [0|0]`, `X → [1|0]`, `Z → [0|1]`, `Y → [1|1]`.
///
/// # Examples
///
/// ```
/// use phoenix_pauli::Pauli;
///
/// let (p, phase) = Pauli::X.mul(Pauli::Z);
/// assert_eq!(p, Pauli::Y);
/// assert_eq!(phase, 3); // XZ = i³ Y = -iY
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Pauli {
    /// The identity.
    #[default]
    I,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
}

impl Pauli {
    /// All four Paulis in `(x, z)` nibble order `I, X, Z, Y` is *not* used;
    /// this constant lists them in conventional `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The three non-identity Paulis.
    pub const XYZ: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Builds a Pauli from its symplectic bits `(x, z)`.
    #[inline]
    pub const fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// The symplectic `x` bit.
    #[inline]
    pub const fn x_bit(self) -> bool {
        matches!(self, Pauli::X | Pauli::Y)
    }

    /// The symplectic `z` bit.
    #[inline]
    pub const fn z_bit(self) -> bool {
        matches!(self, Pauli::Z | Pauli::Y)
    }

    /// Whether this is the identity.
    #[inline]
    pub const fn is_identity(self) -> bool {
        matches!(self, Pauli::I)
    }

    /// Multiplies two Paulis, returning `(product, k)` with
    /// `self · rhs = i^k · product`.
    ///
    /// Uses the convention `pauli(x, z) = i^{x·z} XˣZᶻ` so that
    /// `pauli(1,1) = Y` exactly.
    // Not `std::ops::Mul`: the product carries an `i^k` phase alongside
    // the operator, so the signature is `(Pauli, u8)`, not `Pauli`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Pauli) -> (Pauli, u8) {
        let (x1, z1) = (self.x_bit() as i32, self.z_bit() as i32);
        let (x2, z2) = (rhs.x_bit() as i32, rhs.z_bit() as i32);
        let x3 = x1 ^ x2;
        let z3 = z1 ^ z2;
        let k = (x1 * z1 + x2 * z2 + 2 * z1 * x2 - x3 * z3).rem_euclid(4);
        (Pauli::from_xz(x3 == 1, z3 == 1), k as u8)
    }

    /// Whether two single-qubit Paulis commute.
    #[inline]
    pub fn commutes(self, rhs: Pauli) -> bool {
        // Symplectic product: x1·z2 + z1·x2 mod 2.
        (self.x_bit() & rhs.z_bit()) == (self.z_bit() & rhs.x_bit())
            || self.is_identity()
            || rhs.is_identity()
            || self == rhs
    }

    /// The 2×2 matrix representation.
    pub fn to_matrix(self) -> CMatrix {
        let o = Complex::ZERO;
        let l = Complex::ONE;
        let i = Complex::I;
        match self {
            Pauli::I => CMatrix::from_rows(&[&[l, o], &[o, l]]),
            Pauli::X => CMatrix::from_rows(&[&[o, l], &[l, o]]),
            Pauli::Y => CMatrix::from_rows(&[&[o, -i], &[i, o]]),
            Pauli::Z => CMatrix::from_rows(&[&[l, o], &[o, -l]]),
        }
    }

    /// Parses one of `I`, `X`, `Y`, `Z` (case-insensitive).
    pub fn from_char(c: char) -> Option<Pauli> {
        match c.to_ascii_uppercase() {
            'I' => Some(Pauli::I),
            'X' => Some(Pauli::X),
            'Y' => Some(Pauli::Y),
            'Z' => Some(Pauli::Z),
            _ => None,
        }
    }

    /// The character label.
    pub const fn to_char(self) -> char {
        match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        }
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_mathkit::Complex;

    /// Every product identity is checked against 2×2 matrix arithmetic.
    #[test]
    fn multiplication_matches_matrices() {
        for &a in &Pauli::ALL {
            for &b in &Pauli::ALL {
                let (p, k) = a.mul(b);
                let phase = match k {
                    0 => Complex::ONE,
                    1 => Complex::I,
                    2 => -Complex::ONE,
                    3 => -Complex::I,
                    _ => unreachable!(),
                };
                let lhs = a.to_matrix().matmul(&b.to_matrix());
                let rhs = p.to_matrix().scale(phase);
                assert!(lhs.approx_eq(&rhs, 1e-15), "{a}·{b} != i^{k}·{p}");
            }
        }
    }

    #[test]
    fn commutation_matches_matrices() {
        for &a in &Pauli::ALL {
            for &b in &Pauli::ALL {
                let ab = a.to_matrix().matmul(&b.to_matrix());
                let ba = b.to_matrix().matmul(&a.to_matrix());
                assert_eq!(a.commutes(b), ab.approx_eq(&ba, 1e-15), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn xz_roundtrip() {
        for &p in &Pauli::ALL {
            assert_eq!(Pauli::from_xz(p.x_bit(), p.z_bit()), p);
        }
    }

    #[test]
    fn char_roundtrip() {
        for &p in &Pauli::ALL {
            assert_eq!(Pauli::from_char(p.to_char()), Some(p));
            assert_eq!(Pauli::from_char(p.to_char().to_ascii_lowercase()), Some(p));
        }
        assert_eq!(Pauli::from_char('Q'), None);
    }

    #[test]
    fn paulis_are_self_inverse() {
        for &p in &Pauli::ALL {
            let (q, k) = p.mul(p);
            assert_eq!(q, Pauli::I);
            assert_eq!(k, 0);
        }
    }
}
