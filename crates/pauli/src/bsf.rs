//! The signed binary symplectic form (BSF) tableau.

use crate::mask::QubitMask;
use crate::string::MAX_QUBITS;
use crate::{Clifford2Q, PauliString};
use std::fmt;

/// Folds a Clifford-conjugation sign flip into a rotation coefficient.
///
/// This is the *single* sign convention of the workspace: tableau
/// conjugation ([`Bsf::apply_clifford2q`]), synthesis-time term sequencing
/// (`SimplifiedGroup::term_sequence` in `phoenix-core`), and parametric
/// angle binding (`phoenix-cache`) all apply signs through this function,
/// so a skeleton bound with concrete angles reproduces a cold compile
/// bit-for-bit (f64 negation is exact).
#[inline]
pub fn fold_conjugation_sign(coeff: f64, sign: i8) -> f64 {
    if sign < 0 {
        -coeff
    } else {
        coeff
    }
}

/// One row of a [`Bsf`]: a Pauli string (as packed `[X | Z]` bit masks)
/// together with its rotation coefficient.
///
/// A row represents the Pauli exponentiation `exp(-i · coeff · P)`. Sign
/// flips under Clifford conjugation (`C P C† = -P'`) are folded into
/// `coeff`, which keeps the tableau purely binary as in the paper while
/// preserving exact circuit semantics.
#[derive(Debug, Clone, PartialEq)]
pub struct BsfRow {
    x: QubitMask,
    z: QubitMask,
    coeff: f64,
}

impl BsfRow {
    /// Creates a row from `u128` masks and a coefficient (covers the low
    /// 128 qubits; wider rows are built with [`BsfRow::from_packed`]).
    pub fn new(x: u128, z: u128, coeff: f64) -> Self {
        BsfRow {
            x: QubitMask::from_u128(x),
            z: QubitMask::from_u128(z),
            coeff,
        }
    }

    /// Creates a row from packed masks and a coefficient.
    pub fn from_packed(x: QubitMask, z: QubitMask, coeff: f64) -> Self {
        BsfRow { x, z, coeff }
    }

    /// The X-block bit mask.
    #[inline]
    pub fn x_mask(&self) -> &QubitMask {
        &self.x
    }

    /// The Z-block bit mask.
    #[inline]
    pub fn z_mask(&self) -> &QubitMask {
        &self.z
    }

    /// The rotation coefficient (sign-folded).
    #[inline]
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// Number of non-trivially acted qubits (word-parallel popcount).
    #[inline]
    pub fn weight(&self) -> usize {
        self.x.or_count(&self.z) as usize
    }

    /// Bit mask of non-trivially acted qubits.
    #[inline]
    pub fn support_mask(&self) -> QubitMask {
        &self.x | &self.z
    }

    /// Whether the row is *local* in the paper's sense (weight ≤ 1), i.e. a
    /// plain 1Q rotation inducing no synthesis overhead.
    #[inline]
    pub fn is_local(&self) -> bool {
        self.weight() <= 1
    }

    /// Reconstructs the row as an `n`-qubit [`PauliString`].
    pub fn to_pauli_string(&self, n: usize) -> PauliString {
        PauliString::from_packed(n, self.x.clone(), self.z.clone())
    }

    /// The 4-bit restriction of this row to qubits `(a, b)`, encoded as
    /// `x_a | z_a·2 | x_b·4 | z_b·8` — the index into a generator's
    /// conjugation table (see [`Clifford2QKind::conjugation_table`]).
    ///
    /// [`Clifford2QKind::conjugation_table`]: crate::Clifford2QKind::conjugation_table
    #[inline]
    pub fn nibble(&self, a: usize, b: usize) -> usize {
        (self.x.bit(a) as usize)
            | (self.z.bit(a) as usize) << 1
            | (self.x.bit(b) as usize) << 2
            | (self.z.bit(b) as usize) << 3
    }
}

/// Number of non-identity slots of a 2Q nibble: `(p_a ≠ I) + (p_b ≠ I)`.
#[inline]
pub fn nibble_weight(nib: usize) -> usize {
    (nib & 0b0011 != 0) as usize + (nib & 0b1100 != 0) as usize
}

/// Error constructing a [`Bsf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BsfError {
    /// A term's qubit count differed from the tableau's.
    QubitCountMismatch {
        /// The tableau qubit count.
        expected: usize,
        /// The offending term's qubit count.
        found: usize,
    },
    /// The requested register width exceeded [`MAX_QUBITS`].
    UnsupportedWidth {
        /// The offending width.
        num_qubits: usize,
    },
}

impl fmt::Display for BsfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BsfError::QubitCountMismatch { expected, found } => write!(
                f,
                "pauli term acts on {found} qubits but the tableau has {expected}"
            ),
            BsfError::UnsupportedWidth { num_qubits } => write!(
                f,
                "tableau width {num_qubits} exceeds the supported maximum of {MAX_QUBITS} qubits"
            ),
        }
    }
}

impl std::error::Error for BsfError {}

/// A binary symplectic tableau: a stack of [`BsfRow`]s over `n` qubits.
///
/// This is the object Algorithm 1 of the paper simplifies: 2Q Clifford
/// conjugations are applied simultaneously to all rows until the *total
/// weight* `w_tot = ‖ ∨ᵢ (rₓ⁽ⁱ⁾ ∨ r_z⁽ⁱ⁾) ‖` (Eq. (4)) is at most 2.
///
/// # Examples
///
/// ```
/// use phoenix_pauli::{Bsf, PauliString};
///
/// let bsf = Bsf::from_terms(
///     3,
///     vec![("XXI".parse::<PauliString>()?, 0.5), ("IZZ".parse()?, -0.25)],
/// )?;
/// assert_eq!(bsf.total_weight(), 3);
/// assert_eq!(bsf.num_nonlocal(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bsf {
    n: usize,
    rows: Vec<BsfRow>,
}

impl Bsf {
    /// Creates an empty tableau over `n` qubits.
    pub fn new(n: usize) -> Self {
        Bsf {
            n,
            rows: Vec::new(),
        }
    }

    /// Builds a tableau from `(string, coefficient)` terms.
    ///
    /// # Errors
    ///
    /// Returns [`BsfError::UnsupportedWidth`] if `n > MAX_QUBITS` and
    /// [`BsfError::QubitCountMismatch`] if any string does not act on
    /// exactly `n` qubits.
    pub fn from_terms(
        n: usize,
        terms: impl IntoIterator<Item = (PauliString, f64)>,
    ) -> Result<Self, BsfError> {
        if n > MAX_QUBITS {
            return Err(BsfError::UnsupportedWidth { num_qubits: n });
        }
        let mut bsf = Bsf::new(n);
        for (p, c) in terms {
            if p.num_qubits() != n {
                return Err(BsfError::QubitCountMismatch {
                    expected: n,
                    found: p.num_qubits(),
                });
            }
            bsf.rows.push(BsfRow::from_packed(
                p.x_mask().clone(),
                p.z_mask().clone(),
                c,
            ));
        }
        Ok(bsf)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The rows of the tableau.
    #[inline]
    pub fn rows(&self) -> &[BsfRow] {
        &self.rows
    }

    /// Whether there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has support outside the tableau's qubits.
    pub fn push_row(&mut self, row: BsfRow) {
        assert!(
            row.support_mask().max_bit().is_none_or(|b| b < self.n),
            "row support exceeds tableau qubit count"
        );
        self.rows.push(row);
    }

    /// Bit mask of qubits any row acts on (word-parallel union).
    pub fn support_mask(&self) -> QubitMask {
        let mut m = QubitMask::zeros(self.n);
        for r in &self.rows {
            m.or_with(r.x_mask());
            m.or_with(r.z_mask());
        }
        m
    }

    /// The qubits any row acts on, in increasing order.
    pub fn support(&self) -> Vec<usize> {
        self.support_mask().to_indices()
    }

    /// The paper's *total weight* `w_tot` (Eq. (4)): the number of qubits on
    /// which at least one row acts non-trivially.
    pub fn total_weight(&self) -> usize {
        self.support_mask().count_ones() as usize
    }

    /// Number of *nonlocal* rows (weight > 1), the `n_n.l.` of Eq. (6).
    pub fn num_nonlocal(&self) -> usize {
        self.rows.iter().filter(|r| !r.is_local()).count()
    }

    /// Removes and returns all local rows (weight ≤ 1). Weight-0 rows (pure
    /// identities — global phases) are dropped entirely.
    pub fn pop_local_paulis(&mut self) -> Vec<BsfRow> {
        let mut locals = Vec::new();
        self.rows.retain(|r| {
            if r.weight() == 1 {
                locals.push(r.clone());
                false
            } else {
                r.weight() != 0
            }
        });
        locals
    }

    /// Conjugates every row by the 2Q Clifford generator `c` in place,
    /// folding sign flips into the coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `c` addresses qubits outside the tableau.
    pub fn apply_clifford2q(&mut self, c: Clifford2Q) {
        assert!(
            c.a < self.n && c.b < self.n,
            "clifford qubits must lie inside the tableau"
        );
        let table = c.kind.conjugation_table();
        for row in &mut self.rows {
            let (out, sign) = table[row.nibble(c.a, c.b)];
            row.x.assign_bit(c.a, out & 1 != 0);
            row.x.assign_bit(c.b, out & 4 != 0);
            row.z.assign_bit(c.a, out & 2 != 0);
            row.z.assign_bit(c.b, out & 8 != 0);
            row.coeff = fold_conjugation_sign(row.coeff, sign);
        }
    }

    /// Returns a conjugated copy without mutating `self`.
    pub fn conjugated(&self, c: Clifford2Q) -> Bsf {
        let mut out = self.clone();
        out.apply_clifford2q(c);
        out
    }

    /// Reconstructs the `(PauliString, coeff)` terms.
    pub fn to_terms(&self) -> Vec<(PauliString, f64)> {
        self.rows
            .iter()
            .map(|r| (r.to_pauli_string(self.n), r.coeff()))
            .collect()
    }
}

impl fmt::Display for Bsf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BSF over {} qubits, {} rows:", self.n, self.rows.len())?;
        for r in &self.rows {
            writeln!(f, "  {:+.6} · {}", r.coeff(), r.to_pauli_string(self.n))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clifford2QKind, CLIFFORD2Q_GENERATORS};

    fn bsf_from(labels: &[&str]) -> Bsf {
        let n = labels[0].len();
        Bsf::from_terms(
            n,
            labels
                .iter()
                .map(|l| (l.parse::<PauliString>().unwrap(), 1.0)),
        )
        .unwrap()
    }

    #[test]
    fn total_weight_is_union_support() {
        let bsf = bsf_from(&["XII", "IIZ"]);
        assert_eq!(bsf.total_weight(), 2);
        assert_eq!(bsf.support(), vec![0, 2]);
    }

    #[test]
    fn qubit_count_mismatch_is_an_error() {
        let err =
            Bsf::from_terms(3, vec![("XX".parse::<PauliString>().unwrap(), 1.0)]).unwrap_err();
        assert_eq!(
            err,
            BsfError::QubitCountMismatch {
                expected: 3,
                found: 2
            }
        );
        assert!(err.to_string().contains("3"));
    }

    #[test]
    fn unsupported_width_is_an_error() {
        let err = Bsf::from_terms(MAX_QUBITS + 1, vec![]).unwrap_err();
        assert_eq!(
            err,
            BsfError::UnsupportedWidth {
                num_qubits: MAX_QUBITS + 1
            }
        );
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn pop_local_paulis_peels_weight_one() {
        let mut bsf = bsf_from(&["XII", "XXI", "III"]);
        let locals = bsf.pop_local_paulis();
        assert_eq!(locals.len(), 1);
        assert_eq!(locals[0].weight(), 1);
        // The identity row is silently dropped, the weight-2 row remains.
        assert_eq!(bsf.rows().len(), 1);
        assert_eq!(bsf.rows()[0].weight(), 2);
    }

    #[test]
    fn fig1b_example_simplifies_to_weight_two() {
        // The headline example: [ZYY; ZZY; XYY; XZY] all drop to weight 2
        // under one C(X,Y) conjugation on qubits (1, 2).
        let mut bsf = bsf_from(&["ZYY", "ZZY", "XYY", "XZY"]);
        assert!(bsf.rows().iter().all(|r| r.weight() == 3));
        bsf.apply_clifford2q(Clifford2Q::new(Clifford2QKind::Cxy, 1, 2));
        assert!(bsf.rows().iter().all(|r| r.weight() == 2), "got {bsf}");
        // The whole tableau collapses onto qubits {0, 1}: directly
        // synthesizable (w_tot ≤ 2) after a single Clifford conjugation.
        assert_eq!(bsf.total_weight(), 2);
    }

    #[test]
    fn conjugation_is_involutive_on_tableau() {
        let orig = bsf_from(&["XYZI", "IZZY", "YXIX"]);
        for kind in CLIFFORD2Q_GENERATORS {
            let c = Clifford2Q::new(kind, 1, 3);
            let twice = orig.conjugated(c).conjugated(c);
            assert_eq!(twice, orig, "{kind}");
        }
    }

    #[test]
    fn conjugation_preserves_commutation_structure() {
        let orig = bsf_from(&["XYZI", "IZZY", "YXIX", "ZZII"]);
        let conj = orig.conjugated(Clifford2Q::new(Clifford2QKind::Cyz, 0, 2));
        let t0 = orig.to_terms();
        let t1 = conj.to_terms();
        for i in 0..t0.len() {
            for j in 0..t0.len() {
                assert_eq!(
                    t0[i].0.commutes(&t0[j].0),
                    t1[i].0.commutes(&t1[j].0),
                    "rows {i},{j}"
                );
            }
        }
    }

    #[test]
    fn sign_flips_fold_into_coefficients() {
        // Find any generator/input pair with a sign flip and check the
        // coefficient negates.
        let mut found_flip = false;
        for kind in CLIFFORD2Q_GENERATORS {
            for nib in 1u8..16 {
                if kind.conjugation_table()[nib as usize].1 < 0 {
                    found_flip = true;
                    let pa = crate::Pauli::from_xz(nib & 1 == 1, nib >> 1 & 1 == 1);
                    let pb = crate::Pauli::from_xz(nib >> 2 & 1 == 1, nib >> 3 & 1 == 1);
                    let p = PauliString::from_sparse(2, &[(0, pa), (1, pb)]);
                    let mut bsf = Bsf::from_terms(2, vec![(p, 0.7)]).unwrap();
                    bsf.apply_clifford2q(Clifford2Q::new(kind, 0, 1));
                    assert_eq!(bsf.rows()[0].coeff(), -0.7);
                }
            }
        }
        assert!(found_flip, "at least one generator flips some sign");
    }

    #[test]
    fn nibble_encodes_the_two_qubit_restriction() {
        // XYZ: qubit 0 = X (x only), 1 = Y (x and z), 2 = Z (z only).
        let bsf = bsf_from(&["XYZ"]);
        let row = &bsf.rows()[0];
        assert_eq!(row.nibble(0, 1), 0b1101, "(X, Y)");
        assert_eq!(row.nibble(1, 2), 0b1011, "(Y, Z)");
        assert_eq!(row.nibble(2, 0), 0b0110, "(Z, X)");
        assert_eq!(nibble_weight(0b0000), 0);
        assert_eq!(nibble_weight(0b0010), 1);
        assert_eq!(nibble_weight(0b1101), 2);
    }

    #[test]
    fn to_terms_roundtrip() {
        let bsf = bsf_from(&["XYZ", "ZIY"]);
        let terms = bsf.to_terms();
        let back = Bsf::from_terms(3, terms).unwrap();
        assert_eq!(back, bsf);
    }

    #[test]
    fn wide_tableau_conjugation_crosses_word_boundaries() {
        // A 300-qubit tableau with support straddling the u64 word seams:
        // conjugation on (63, 64) and (255, 256) must behave exactly as the
        // same nibble pattern does on a narrow register.
        let n = 300;
        let mut p = PauliString::identity(n);
        p.set(63, crate::Pauli::Z);
        p.set(64, crate::Pauli::Y);
        p.set(256, crate::Pauli::Y);
        let mut bsf = Bsf::from_terms(n, vec![(p, 1.0)]).unwrap();
        assert_eq!(bsf.rows()[0].weight(), 3);
        for (a, b) in [(63, 64), (255, 256)] {
            for kind in CLIFFORD2Q_GENERATORS {
                let c = Clifford2Q::new(kind, a, b);
                let twice = bsf.conjugated(c).conjugated(c);
                assert_eq!(twice, bsf, "{kind} on ({a},{b})");
            }
        }
        bsf.apply_clifford2q(Clifford2Q::new(Clifford2QKind::Cxy, 63, 64));
        let narrow = Bsf::from_terms(2, vec![("ZY".parse::<PauliString>().unwrap(), 1.0)])
            .unwrap()
            .conjugated(Clifford2Q::new(Clifford2QKind::Cxy, 0, 1));
        let wide_row = &bsf.rows()[0];
        let narrow_row = &narrow.rows()[0];
        assert_eq!(wide_row.nibble(63, 64), narrow_row.nibble(0, 1));
        assert_eq!(wide_row.coeff(), narrow_row.coeff());
    }

    #[test]
    fn display_includes_rows() {
        let bsf = bsf_from(&["XY"]);
        let s = bsf.to_string();
        assert!(s.contains("XY"));
        assert!(s.contains("2 qubits"));
    }
}
