//! The signed binary symplectic form (BSF) tableau.

use crate::string::mask_below;
use crate::{Clifford2Q, PauliString};
use std::fmt;

/// Folds a Clifford-conjugation sign flip into a rotation coefficient.
///
/// This is the *single* sign convention of the workspace: tableau
/// conjugation ([`Bsf::apply_clifford2q`]), synthesis-time term sequencing
/// (`SimplifiedGroup::term_sequence` in `phoenix-core`), and parametric
/// angle binding (`phoenix-cache`) all apply signs through this function,
/// so a skeleton bound with concrete angles reproduces a cold compile
/// bit-for-bit (f64 negation is exact).
#[inline]
pub fn fold_conjugation_sign(coeff: f64, sign: i8) -> f64 {
    if sign < 0 {
        -coeff
    } else {
        coeff
    }
}

/// One row of a [`Bsf`]: a Pauli string (as `[X | Z]` bit masks) together
/// with its rotation coefficient.
///
/// A row represents the Pauli exponentiation `exp(-i · coeff · P)`. Sign
/// flips under Clifford conjugation (`C P C† = -P'`) are folded into
/// `coeff`, which keeps the tableau purely binary as in the paper while
/// preserving exact circuit semantics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BsfRow {
    x: u128,
    z: u128,
    coeff: f64,
}

impl BsfRow {
    /// Creates a row from masks and a coefficient.
    pub fn new(x: u128, z: u128, coeff: f64) -> Self {
        BsfRow { x, z, coeff }
    }

    /// The X-block bit mask.
    #[inline]
    pub fn x_mask(&self) -> u128 {
        self.x
    }

    /// The Z-block bit mask.
    #[inline]
    pub fn z_mask(&self) -> u128 {
        self.z
    }

    /// The rotation coefficient (sign-folded).
    #[inline]
    pub fn coeff(&self) -> f64 {
        self.coeff
    }

    /// Number of non-trivially acted qubits.
    #[inline]
    pub fn weight(&self) -> usize {
        (self.x | self.z).count_ones() as usize
    }

    /// Bit mask of non-trivially acted qubits.
    #[inline]
    pub fn support_mask(&self) -> u128 {
        self.x | self.z
    }

    /// Whether the row is *local* in the paper's sense (weight ≤ 1), i.e. a
    /// plain 1Q rotation inducing no synthesis overhead.
    #[inline]
    pub fn is_local(&self) -> bool {
        self.weight() <= 1
    }

    /// Reconstructs the row as an `n`-qubit [`PauliString`].
    pub fn to_pauli_string(&self, n: usize) -> PauliString {
        PauliString::from_masks(n, self.x, self.z)
    }

    /// The 4-bit restriction of this row to qubits `(a, b)`, encoded as
    /// `x_a | z_a·2 | x_b·4 | z_b·8` — the index into a generator's
    /// conjugation table (see [`Clifford2QKind::conjugation_table`]).
    ///
    /// [`Clifford2QKind::conjugation_table`]: crate::Clifford2QKind::conjugation_table
    #[inline]
    pub fn nibble(&self, a: usize, b: usize) -> usize {
        ((self.x >> a & 1) as usize)
            | ((self.z >> a & 1) as usize) << 1
            | ((self.x >> b & 1) as usize) << 2
            | ((self.z >> b & 1) as usize) << 3
    }
}

/// Number of non-identity slots of a 2Q nibble: `(p_a ≠ I) + (p_b ≠ I)`.
#[inline]
pub fn nibble_weight(nib: usize) -> usize {
    (nib & 0b0011 != 0) as usize + (nib & 0b1100 != 0) as usize
}

/// Error constructing a [`Bsf`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BsfError {
    /// A term's qubit count differed from the tableau's.
    QubitCountMismatch {
        /// The tableau qubit count.
        expected: usize,
        /// The offending term's qubit count.
        found: usize,
    },
}

impl fmt::Display for BsfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BsfError::QubitCountMismatch { expected, found } => write!(
                f,
                "pauli term acts on {found} qubits but the tableau has {expected}"
            ),
        }
    }
}

impl std::error::Error for BsfError {}

/// A binary symplectic tableau: a stack of [`BsfRow`]s over `n` qubits.
///
/// This is the object Algorithm 1 of the paper simplifies: 2Q Clifford
/// conjugations are applied simultaneously to all rows until the *total
/// weight* `w_tot = ‖ ∨ᵢ (rₓ⁽ⁱ⁾ ∨ r_z⁽ⁱ⁾) ‖` (Eq. (4)) is at most 2.
///
/// # Examples
///
/// ```
/// use phoenix_pauli::{Bsf, PauliString};
///
/// let bsf = Bsf::from_terms(
///     3,
///     vec![("XXI".parse::<PauliString>()?, 0.5), ("IZZ".parse()?, -0.25)],
/// )?;
/// assert_eq!(bsf.total_weight(), 3);
/// assert_eq!(bsf.num_nonlocal(), 2);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Bsf {
    n: usize,
    rows: Vec<BsfRow>,
}

impl Bsf {
    /// Creates an empty tableau over `n` qubits.
    pub fn new(n: usize) -> Self {
        Bsf {
            n,
            rows: Vec::new(),
        }
    }

    /// Builds a tableau from `(string, coefficient)` terms.
    ///
    /// # Errors
    ///
    /// Returns [`BsfError::QubitCountMismatch`] if any string does not act on
    /// exactly `n` qubits.
    pub fn from_terms(
        n: usize,
        terms: impl IntoIterator<Item = (PauliString, f64)>,
    ) -> Result<Self, BsfError> {
        let mut bsf = Bsf::new(n);
        for (p, c) in terms {
            if p.num_qubits() != n {
                return Err(BsfError::QubitCountMismatch {
                    expected: n,
                    found: p.num_qubits(),
                });
            }
            bsf.rows.push(BsfRow::new(p.x_mask(), p.z_mask(), c));
        }
        Ok(bsf)
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// The rows of the tableau.
    #[inline]
    pub fn rows(&self) -> &[BsfRow] {
        &self.rows
    }

    /// Whether there are no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row has support outside the tableau's qubits.
    pub fn push_row(&mut self, row: BsfRow) {
        assert_eq!(
            row.support_mask() & !mask_below(self.n),
            0,
            "row support exceeds tableau qubit count"
        );
        self.rows.push(row);
    }

    /// Bit mask of qubits any row acts on.
    pub fn support_mask(&self) -> u128 {
        self.rows.iter().fold(0u128, |m, r| m | r.support_mask())
    }

    /// The qubits any row acts on, in increasing order.
    pub fn support(&self) -> Vec<usize> {
        crate::string::bits(self.support_mask())
    }

    /// The paper's *total weight* `w_tot` (Eq. (4)): the number of qubits on
    /// which at least one row acts non-trivially.
    pub fn total_weight(&self) -> usize {
        self.support_mask().count_ones() as usize
    }

    /// Number of *nonlocal* rows (weight > 1), the `n_n.l.` of Eq. (6).
    pub fn num_nonlocal(&self) -> usize {
        self.rows.iter().filter(|r| !r.is_local()).count()
    }

    /// Removes and returns all local rows (weight ≤ 1). Weight-0 rows (pure
    /// identities — global phases) are dropped entirely.
    pub fn pop_local_paulis(&mut self) -> Vec<BsfRow> {
        let mut locals = Vec::new();
        self.rows.retain(|r| {
            if r.weight() == 1 {
                locals.push(*r);
                false
            } else {
                r.weight() != 0
            }
        });
        locals
    }

    /// Conjugates every row by the 2Q Clifford generator `c` in place,
    /// folding sign flips into the coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `c` addresses qubits outside the tableau.
    pub fn apply_clifford2q(&mut self, c: Clifford2Q) {
        assert!(
            c.a < self.n && c.b < self.n,
            "clifford qubits must lie inside the tableau"
        );
        let table = c.kind.conjugation_table();
        let (ba, bb) = (1u128 << c.a, 1u128 << c.b);
        for row in &mut self.rows {
            let (out, sign) = table[row.nibble(c.a, c.b)];
            row.x = (row.x & !(ba | bb))
                | if out & 1 != 0 { ba } else { 0 }
                | if out & 4 != 0 { bb } else { 0 };
            row.z = (row.z & !(ba | bb))
                | if out & 2 != 0 { ba } else { 0 }
                | if out & 8 != 0 { bb } else { 0 };
            row.coeff = fold_conjugation_sign(row.coeff, sign);
        }
    }

    /// Returns a conjugated copy without mutating `self`.
    pub fn conjugated(&self, c: Clifford2Q) -> Bsf {
        let mut out = self.clone();
        out.apply_clifford2q(c);
        out
    }

    /// Reconstructs the `(PauliString, coeff)` terms.
    pub fn to_terms(&self) -> Vec<(PauliString, f64)> {
        self.rows
            .iter()
            .map(|r| (r.to_pauli_string(self.n), r.coeff()))
            .collect()
    }
}

impl fmt::Display for Bsf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "BSF over {} qubits, {} rows:", self.n, self.rows.len())?;
        for r in &self.rows {
            writeln!(f, "  {:+.6} · {}", r.coeff(), r.to_pauli_string(self.n))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Clifford2QKind, CLIFFORD2Q_GENERATORS};

    fn bsf_from(labels: &[&str]) -> Bsf {
        let n = labels[0].len();
        Bsf::from_terms(
            n,
            labels
                .iter()
                .map(|l| (l.parse::<PauliString>().unwrap(), 1.0)),
        )
        .unwrap()
    }

    #[test]
    fn total_weight_is_union_support() {
        let bsf = bsf_from(&["XII", "IIZ"]);
        assert_eq!(bsf.total_weight(), 2);
        assert_eq!(bsf.support(), vec![0, 2]);
    }

    #[test]
    fn qubit_count_mismatch_is_an_error() {
        let err =
            Bsf::from_terms(3, vec![("XX".parse::<PauliString>().unwrap(), 1.0)]).unwrap_err();
        assert_eq!(
            err,
            BsfError::QubitCountMismatch {
                expected: 3,
                found: 2
            }
        );
        assert!(err.to_string().contains("3"));
    }

    #[test]
    fn pop_local_paulis_peels_weight_one() {
        let mut bsf = bsf_from(&["XII", "XXI", "III"]);
        let locals = bsf.pop_local_paulis();
        assert_eq!(locals.len(), 1);
        assert_eq!(locals[0].weight(), 1);
        // The identity row is silently dropped, the weight-2 row remains.
        assert_eq!(bsf.rows().len(), 1);
        assert_eq!(bsf.rows()[0].weight(), 2);
    }

    #[test]
    fn fig1b_example_simplifies_to_weight_two() {
        // The headline example: [ZYY; ZZY; XYY; XZY] all drop to weight 2
        // under one C(X,Y) conjugation on qubits (1, 2).
        let mut bsf = bsf_from(&["ZYY", "ZZY", "XYY", "XZY"]);
        assert!(bsf.rows().iter().all(|r| r.weight() == 3));
        bsf.apply_clifford2q(Clifford2Q::new(Clifford2QKind::Cxy, 1, 2));
        assert!(bsf.rows().iter().all(|r| r.weight() == 2), "got {bsf}");
        // The whole tableau collapses onto qubits {0, 1}: directly
        // synthesizable (w_tot ≤ 2) after a single Clifford conjugation.
        assert_eq!(bsf.total_weight(), 2);
    }

    #[test]
    fn conjugation_is_involutive_on_tableau() {
        let orig = bsf_from(&["XYZI", "IZZY", "YXIX"]);
        for kind in CLIFFORD2Q_GENERATORS {
            let c = Clifford2Q::new(kind, 1, 3);
            let twice = orig.conjugated(c).conjugated(c);
            assert_eq!(twice, orig, "{kind}");
        }
    }

    #[test]
    fn conjugation_preserves_commutation_structure() {
        let orig = bsf_from(&["XYZI", "IZZY", "YXIX", "ZZII"]);
        let conj = orig.conjugated(Clifford2Q::new(Clifford2QKind::Cyz, 0, 2));
        let t0 = orig.to_terms();
        let t1 = conj.to_terms();
        for i in 0..t0.len() {
            for j in 0..t0.len() {
                assert_eq!(
                    t0[i].0.commutes(&t0[j].0),
                    t1[i].0.commutes(&t1[j].0),
                    "rows {i},{j}"
                );
            }
        }
    }

    #[test]
    fn sign_flips_fold_into_coefficients() {
        // Find any generator/input pair with a sign flip and check the
        // coefficient negates.
        let mut found_flip = false;
        for kind in CLIFFORD2Q_GENERATORS {
            for nib in 1u8..16 {
                if kind.conjugation_table()[nib as usize].1 < 0 {
                    found_flip = true;
                    let pa = crate::Pauli::from_xz(nib & 1 == 1, nib >> 1 & 1 == 1);
                    let pb = crate::Pauli::from_xz(nib >> 2 & 1 == 1, nib >> 3 & 1 == 1);
                    let p = PauliString::from_sparse(2, &[(0, pa), (1, pb)]);
                    let mut bsf = Bsf::from_terms(2, vec![(p, 0.7)]).unwrap();
                    bsf.apply_clifford2q(Clifford2Q::new(kind, 0, 1));
                    assert_eq!(bsf.rows()[0].coeff(), -0.7);
                }
            }
        }
        assert!(found_flip, "at least one generator flips some sign");
    }

    #[test]
    fn nibble_encodes_the_two_qubit_restriction() {
        // XYZ: qubit 0 = X (x only), 1 = Y (x and z), 2 = Z (z only).
        let bsf = bsf_from(&["XYZ"]);
        let row = bsf.rows()[0];
        assert_eq!(row.nibble(0, 1), 0b1101, "(X, Y)");
        assert_eq!(row.nibble(1, 2), 0b1011, "(Y, Z)");
        assert_eq!(row.nibble(2, 0), 0b0110, "(Z, X)");
        assert_eq!(nibble_weight(0b0000), 0);
        assert_eq!(nibble_weight(0b0010), 1);
        assert_eq!(nibble_weight(0b1101), 2);
    }

    #[test]
    fn to_terms_roundtrip() {
        let bsf = bsf_from(&["XYZ", "ZIY"]);
        let terms = bsf.to_terms();
        let back = Bsf::from_terms(3, terms).unwrap();
        assert_eq!(back, bsf);
    }

    #[test]
    fn display_includes_rows() {
        let bsf = bsf_from(&["XY"]);
        let s = bsf.to_string();
        assert!(s.contains("XY"));
        assert!(s.contains("2 qubits"));
    }
}
