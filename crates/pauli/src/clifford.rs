//! The six universal-controlled-gate generators of the 2Q Clifford group and
//! their conjugation action on Pauli strings.
//!
//! PHOENIX searches over the generator set of Eq. (5),
//! `{C(X,X), C(Y,Y), C(Z,Z), C(X,Y), C(Y,Z), C(Z,X)}`, where
//! `C(σ₀, σ₁) = ½((I+σ₀)⊗I + (I−σ₀)⊗σ₁)`. Every generator is Hermitian and
//! CNOT-equivalent (`C(Z,X)` *is* CNOT).
//!
//! The tableau update rule of each generator — how it rewrites the 4-bit
//! nibble `(x_a, z_a, x_b, z_b)` of a BSF row and whether it flips the row's
//! sign — is derived here from ground-truth 4×4 complex-matrix conjugation
//! and cached. This removes transcription errors in the update rules of
//! Fig. 2 / Eq. (3) of the paper and is cross-checked by unit tests.

use crate::Pauli;
use phoenix_mathkit::{CMatrix, Complex};
use std::fmt;
use std::sync::OnceLock;

/// One of the six 2Q Clifford generators `C(σ₀, σ₁)` of Eq. (5).
///
/// # Examples
///
/// ```
/// use phoenix_pauli::{Clifford2QKind, Pauli};
///
/// assert_eq!(Clifford2QKind::Czx.sigma0(), Pauli::Z);
/// assert_eq!(Clifford2QKind::Czx.sigma1(), Pauli::X);
/// assert_eq!(Clifford2QKind::Czx.to_string(), "C(Z,X)"); // i.e. CNOT
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Clifford2QKind {
    /// `C(X,X)`
    Cxx,
    /// `C(Y,Y)`
    Cyy,
    /// `C(Z,Z)` (controlled-Z)
    Czz,
    /// `C(X,Y)`
    Cxy,
    /// `C(Y,Z)`
    Cyz,
    /// `C(Z,X)` (CNOT)
    Czx,
}

/// The generator set of Eq. (5), in the paper's listing order.
pub const CLIFFORD2Q_GENERATORS: [Clifford2QKind; 6] = [
    Clifford2QKind::Cxx,
    Clifford2QKind::Cyy,
    Clifford2QKind::Czz,
    Clifford2QKind::Cxy,
    Clifford2QKind::Cyz,
    Clifford2QKind::Czx,
];

impl Clifford2QKind {
    /// The control-side Pauli `σ₀`.
    pub const fn sigma0(self) -> Pauli {
        match self {
            Clifford2QKind::Cxx | Clifford2QKind::Cxy => Pauli::X,
            Clifford2QKind::Cyy | Clifford2QKind::Cyz => Pauli::Y,
            Clifford2QKind::Czz | Clifford2QKind::Czx => Pauli::Z,
        }
    }

    /// The target-side Pauli `σ₁`.
    pub const fn sigma1(self) -> Pauli {
        match self {
            Clifford2QKind::Cxx | Clifford2QKind::Czx => Pauli::X,
            Clifford2QKind::Cyy | Clifford2QKind::Cxy => Pauli::Y,
            Clifford2QKind::Czz | Clifford2QKind::Cyz => Pauli::Z,
        }
    }

    /// Index of this kind within [`CLIFFORD2Q_GENERATORS`].
    pub fn index(self) -> usize {
        CLIFFORD2Q_GENERATORS
            .iter()
            .position(|&k| k == self)
            .expect("kind is always in the generator list")
    }

    /// The 4×4 unitary matrix, little-endian (control qubit = basis LSB).
    pub fn matrix4(self) -> CMatrix {
        let i1 = CMatrix::identity(2);
        let s0 = self.sigma0().to_matrix();
        let s1 = self.sigma1().to_matrix();
        // ½ (I_b ⊗ (I+σ₀)_a + σ₁_b ⊗ (I−σ₀)_a) in little-endian kron order.
        let p_plus = (&i1 + &s0).scale(Complex::from_re(0.5));
        let p_minus = (&i1 - &s0).scale(Complex::from_re(0.5));
        &i1.kron(&p_plus) + &s1.kron(&p_minus)
    }

    /// The conjugation table: for each input nibble
    /// `(x_a | z_a·2 | x_b·4 | z_b·8)` the output nibble and sign of
    /// `C P C†`.
    pub fn conjugation_table(self) -> &'static [(u8, i8); 16] {
        &conjugation_tables()[self.index()]
    }

    /// The conjugation table's *output nibbles only*, with the two qubit
    /// roles optionally reversed.
    ///
    /// Entry `k` of `nibble_map(false)` is `conjugation_table()[k].0`. Entry
    /// `k` of `nibble_map(true)` is the output nibble of conjugating `k` by
    /// this generator applied with its control side on the qubit that bits
    /// 2–3 of `k` describe — i.e. both the input and output keep a *fixed*
    /// `(a, b)` bit order while the gate's orientation flips. This lets a
    /// caller bucket rows by their `(a, b)` nibble once and score both
    /// orientations of an asymmetric generator from the same buckets,
    /// without re-reading any row.
    ///
    /// Signs are deliberately dropped: the Eq. (6) cost is coefficient-blind.
    pub fn nibble_map(self, reversed: bool) -> &'static [u8; 16] {
        static MAPS: OnceLock<[[[u8; 16]; 2]; 6]> = OnceLock::new();
        let maps = MAPS.get_or_init(|| {
            let swap = |nib: u8| (nib >> 2) | ((nib & 0b11) << 2);
            let mut maps = [[[0u8; 16]; 2]; 6];
            for (ti, kind) in CLIFFORD2Q_GENERATORS.iter().enumerate() {
                let table = kind.conjugation_table();
                for nib in 0..16 {
                    maps[ti][0][nib] = table[nib].0;
                    maps[ti][1][nib] = swap(table[swap(nib as u8) as usize].0);
                }
            }
            maps
        });
        &maps[self.index()][reversed as usize]
    }

    /// Conjugates the two-qubit restriction `(p_a, p_b)`, returning
    /// `(p_a', p_b', sign)` with `C (p_a ⊗ p_b) C† = sign · (p_a' ⊗ p_b')`.
    pub fn conjugate(self, pa: Pauli, pb: Pauli) -> (Pauli, Pauli, i8) {
        let nib = (pa.x_bit() as u8)
            | (pa.z_bit() as u8) << 1
            | (pb.x_bit() as u8) << 2
            | (pb.z_bit() as u8) << 3;
        let (out, sign) = self.conjugation_table()[nib as usize];
        (
            Pauli::from_xz(out & 1 == 1, out >> 1 & 1 == 1),
            Pauli::from_xz(out >> 2 & 1 == 1, out >> 3 & 1 == 1),
            sign,
        )
    }
}

impl fmt::Display for Clifford2QKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C({},{})", self.sigma0(), self.sigma1())
    }
}

/// A 2Q Clifford generator applied to a concrete qubit pair `(a, b)`.
///
/// `a` is the control-side qubit (where `σ₀` lives) and `b` the target side.
///
/// # Examples
///
/// ```
/// use phoenix_pauli::{Clifford2Q, Clifford2QKind};
///
/// let cnot = Clifford2Q::new(Clifford2QKind::Czx, 0, 1);
/// assert_eq!(cnot.to_string(), "C(Z,X)[0,1]");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Clifford2Q {
    /// Which generator.
    pub kind: Clifford2QKind,
    /// Control-side qubit.
    pub a: usize,
    /// Target-side qubit.
    pub b: usize,
}

impl Clifford2Q {
    /// Creates a generator instance on qubits `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new(kind: Clifford2QKind, a: usize, b: usize) -> Self {
        assert_ne!(a, b, "clifford2q needs two distinct qubits");
        Clifford2Q { kind, a, b }
    }

    /// Conjugates a full Pauli string: `C P C† = sign · P'`.
    ///
    /// # Panics
    ///
    /// Panics if the gate's qubits lie outside the string.
    pub fn conjugate_string(&self, p: &crate::PauliString) -> (crate::PauliString, i8) {
        let (qa, qb, sign) = self.kind.conjugate(p.get(self.a), p.get(self.b));
        let mut out = p.clone();
        out.set(self.a, qa);
        out.set(self.b, qb);
        (out, sign)
    }
}

impl fmt::Display for Clifford2Q {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{},{}]", self.kind, self.a, self.b)
    }
}

/// Lazily derives all six conjugation tables from matrix arithmetic.
fn conjugation_tables() -> &'static [[(u8, i8); 16]; 6] {
    static TABLES: OnceLock<[[(u8, i8); 16]; 6]> = OnceLock::new();
    TABLES.get_or_init(|| {
        let paulis = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];
        let mut tables = [[(0u8, 1i8); 16]; 6];
        for (ti, kind) in CLIFFORD2Q_GENERATORS.iter().enumerate() {
            let c = kind.matrix4();
            debug_assert!(c.is_unitary(1e-12));
            for nib in 0u8..16 {
                let pa = Pauli::from_xz(nib & 1 == 1, nib >> 1 & 1 == 1);
                let pb = Pauli::from_xz(nib >> 2 & 1 == 1, nib >> 3 & 1 == 1);
                // Little-endian: qubit a is the LSB ⇒ matrix = P_b ⊗ P_a.
                let p = pb.to_matrix().kron(&pa.to_matrix());
                let conj = c.matmul(&p).matmul(&c.dagger());
                let mut found = None;
                'search: for &qa in &paulis {
                    for &qb in &paulis {
                        let cand = qb.to_matrix().kron(&qa.to_matrix());
                        for sign in [1i8, -1] {
                            let scaled = cand.scale(Complex::from_re(sign as f64));
                            if conj.approx_eq(&scaled, 1e-9) {
                                let out = (qa.x_bit() as u8)
                                    | (qa.z_bit() as u8) << 1
                                    | (qb.x_bit() as u8) << 2
                                    | (qb.z_bit() as u8) << 3;
                                found = Some((out, sign));
                                break 'search;
                            }
                        }
                    }
                }
                tables[ti][nib as usize] =
                    found.expect("clifford conjugation of a pauli is a signed pauli");
            }
        }
        tables
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn czx_is_cnot() {
        // CNOT in little-endian (control = qubit 0 = LSB):
        // |00>->|00>, |01>->|11>, |10>->|10>, |11>->|01>
        let m = Clifford2QKind::Czx.matrix4();
        let one = Complex::ONE;
        assert_eq!(m[(0, 0)], one);
        assert_eq!(m[(3, 1)], one);
        assert_eq!(m[(2, 2)], one);
        assert_eq!(m[(1, 3)], one);
    }

    #[test]
    fn generators_are_hermitian_and_unitary() {
        for kind in CLIFFORD2Q_GENERATORS {
            let m = kind.matrix4();
            assert!(m.is_unitary(1e-12), "{kind} not unitary");
            assert!(m.approx_eq(&m.dagger(), 1e-12), "{kind} not hermitian");
        }
    }

    #[test]
    fn conjugation_is_involutive() {
        // Hermitian C means conjugating twice restores the input with sign +1.
        for kind in CLIFFORD2Q_GENERATORS {
            for &pa in &Pauli::ALL {
                for &pb in &Pauli::ALL {
                    let (qa, qb, s1) = kind.conjugate(pa, pb);
                    let (ra, rb, s2) = kind.conjugate(qa, qb);
                    assert_eq!((ra, rb, s1 * s2), (pa, pb, 1), "{kind} on {pa}{pb}");
                }
            }
        }
    }

    #[test]
    fn cnot_update_rule_matches_fig2() {
        // Fig. 2(c): C(Z,X) gives x_b ← x_b ⊕ x_a and z_a ← z_a ⊕ z_b.
        for nib in 0u8..16 {
            let (xa, za, xb, zb) = (nib & 1, nib >> 1 & 1, nib >> 2 & 1, nib >> 3 & 1);
            let pa = Pauli::from_xz(xa == 1, za == 1);
            let pb = Pauli::from_xz(xb == 1, zb == 1);
            let (qa, qb, _) = Clifford2QKind::Czx.conjugate(pa, pb);
            assert_eq!(qa.x_bit() as u8, xa, "x_a unchanged");
            assert_eq!(qa.z_bit() as u8, za ^ zb, "z_a ← z_a ⊕ z_b");
            assert_eq!(qb.x_bit() as u8, xb ^ xa, "x_b ← x_b ⊕ x_a");
            assert_eq!(qb.z_bit() as u8, zb, "z_b unchanged");
        }
    }

    #[test]
    fn cxx_update_rule_matches_fig2() {
        // Fig. 2(d): C(X,X) gives x_a ← x_a ⊕ z_b and x_b ← x_b ⊕ z_a.
        for nib in 0u8..16 {
            let (xa, za, xb, zb) = (nib & 1, nib >> 1 & 1, nib >> 2 & 1, nib >> 3 & 1);
            let pa = Pauli::from_xz(xa == 1, za == 1);
            let pb = Pauli::from_xz(xb == 1, zb == 1);
            let (qa, qb, _) = Clifford2QKind::Cxx.conjugate(pa, pb);
            assert_eq!(qa.x_bit() as u8, xa ^ zb, "x_a ← x_a ⊕ z_b");
            assert_eq!(qa.z_bit() as u8, za, "z_a unchanged");
            assert_eq!(qb.x_bit() as u8, xb ^ za, "x_b ← x_b ⊕ z_a");
            assert_eq!(qb.z_bit() as u8, zb, "z_b unchanged");
        }
    }

    #[test]
    fn cxy_equals_hs_cnot_hsdg() {
        // Fig. 1(b): C(X,Y) = (H ⊗ S) CNOT (H ⊗ S†), verified as matrices
        // (little-endian kron order: qubit a = LSB ⇒ A⊗B on (a,b) is B_m ⊗ A_m).
        let h = CMatrix::from_rows(&[
            &[Complex::from_re(1.0), Complex::from_re(1.0)],
            &[Complex::from_re(1.0), Complex::from_re(-1.0)],
        ])
        .scale(Complex::from_re(std::f64::consts::FRAC_1_SQRT_2));
        let s = CMatrix::from_rows(&[&[Complex::ONE, Complex::ZERO], &[Complex::ZERO, Complex::I]]);
        let hs = s.kron(&h); // H on qubit a, S on qubit b
        let hsdg = s.dagger().kron(&h);
        let built = hs.matmul(&Clifford2QKind::Czx.matrix4()).matmul(&hsdg);
        let cxy = Clifford2QKind::Cxy.matrix4();
        // Equal up to a global phase ⇒ unit overlap.
        assert!((built.unitary_overlap(&cxy) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fixed_points_of_generators() {
        // C(σ0, σ1) commutes with σ0⊗I, I⊗σ1 and σ0⊗σ1.
        for kind in CLIFFORD2Q_GENERATORS {
            let s0 = kind.sigma0();
            let s1 = kind.sigma1();
            assert_eq!(kind.conjugate(s0, Pauli::I), (s0, Pauli::I, 1));
            assert_eq!(kind.conjugate(Pauli::I, s1), (Pauli::I, s1, 1));
            assert_eq!(kind.conjugate(s0, s1), (s0, s1, 1));
        }
    }

    #[test]
    fn nibble_map_forward_matches_conjugation_table() {
        for kind in CLIFFORD2Q_GENERATORS {
            let map = kind.nibble_map(false);
            let table = kind.conjugation_table();
            for nib in 0..16 {
                assert_eq!(map[nib], table[nib].0, "{kind} nibble {nib}");
            }
        }
    }

    #[test]
    fn nibble_map_reversed_swaps_the_qubit_roles() {
        // Entry `k` of the reversed map keeps the fixed (a, b) bit order
        // while the control moves to b: conjugate (p_b, p_a) and re-encode.
        for kind in CLIFFORD2Q_GENERATORS {
            let map = kind.nibble_map(true);
            for nib in 0u8..16 {
                let pa = Pauli::from_xz(nib & 1 == 1, nib >> 1 & 1 == 1);
                let pb = Pauli::from_xz(nib >> 2 & 1 == 1, nib >> 3 & 1 == 1);
                let (qb, qa, _) = kind.conjugate(pb, pa);
                let want = (qa.x_bit() as u8)
                    | (qa.z_bit() as u8) << 1
                    | (qb.x_bit() as u8) << 2
                    | (qb.z_bit() as u8) << 3;
                assert_eq!(map[nib as usize], want, "{kind} nibble {nib}");
            }
        }
    }

    #[test]
    fn display_labels() {
        assert_eq!(Clifford2QKind::Cxy.to_string(), "C(X,Y)");
        assert_eq!(
            Clifford2Q::new(Clifford2QKind::Cyy, 3, 5).to_string(),
            "C(Y,Y)[3,5]"
        );
    }

    #[test]
    #[should_panic(expected = "distinct qubits")]
    fn same_qubit_pair_panics() {
        let _ = Clifford2Q::new(Clifford2QKind::Czx, 2, 2);
    }
}
