//! Canonical angle-erased IR form and its incremental Zobrist hash.
//!
//! The structure phase of parametric compilation (DESIGN.md §2.10) operates
//! on programs with the rotation angles erased: what remains of each term is
//! its Pauli-string mask pair `(x, z)`. Two programs with the same mask
//! sequence over the same register compile to the same skeleton circuit, so
//! the [`CanonicalIr`] — the ordered mask list plus the register width — is
//! the content-address of a cached structure artifact.
//!
//! Hashing is Zobrist-style: every `(qubit, Pauli)` site has a fixed random
//! `u64` drawn once from a seeded [`Xoshiro256`], a term hashes to the XOR
//! of its sites, and a program accumulates the XOR of its term hashes.
//! XOR composition makes the accumulator *incremental* (inserting or
//! removing a term is one XOR) and *order-insensitive*, which is exactly
//! right for the group level: grouping partitions terms by support, so a
//! program's accumulator equals the XOR of its groups' accumulators. The
//! final digest additionally mixes the term count and register width so the
//! empty program on 3 vs 5 qubits, or `{P, P}` vs `{}`, stay distinct.
//!
//! Tables are generated in **chunks of 128 qubits**, grown lazily as wider
//! registers appear. Chunk 0 is drawn from `ZOBRIST_SEED` exactly as the
//! fixed-width implementation did, so digests for programs over at most
//! 128 qubits are stable across this representation change (persisted cache
//! artifacts keep their addresses); chunk `c > 0` is drawn from the derived
//! seed `ZOBRIST_SEED ^ mix(c)`.
//!
//! Digest equality is *not* trusted: [`CanonicalIr::eq`] compares the full
//! mask sequence, so a hash collision can only cause a spurious cache miss,
//! never a wrong hit.

use crate::mask::{QubitMask, WORD_BITS};
use crate::PauliString;
use phoenix_mathkit::Xoshiro256;
use std::hash::{Hash, Hasher};
use std::sync::{OnceLock, RwLock};

/// Seed of the Zobrist tables. Fixed so digests are stable across runs and
/// processes (cache artifacts could in principle be persisted).
const ZOBRIST_SEED: u64 = 0x5048_4F45_4E49_5821; // "PHOENIX!"

/// Qubits covered per lazily-generated table chunk.
const CHUNK_QUBITS: usize = 128;

type TableChunk = [[u64; 3]; CHUNK_QUBITS];

fn generate_chunk(c: usize) -> &'static TableChunk {
    let seed = if c == 0 {
        ZOBRIST_SEED
    } else {
        ZOBRIST_SEED ^ mix(c as u64)
    };
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut t = Box::new([[0u64; 3]; CHUNK_QUBITS]);
    for row in t.iter_mut() {
        for cell in row.iter_mut() {
            *cell = rng.next_u64();
        }
    }
    Box::leak(t)
}

/// The per-(qubit, Pauli) random tables for qubits
/// `[c·128, (c+1)·128)`: `[qubit % 128][X=0, Y=1, Z=2]`. Chunks are
/// generated on first use and cached for the process lifetime (leaked —
/// the total is bounded by `MAX_QUBITS / 128` chunks of 3 KiB).
fn chunk_tables(c: usize) -> &'static TableChunk {
    static CHUNKS: OnceLock<RwLock<Vec<&'static TableChunk>>> = OnceLock::new();
    let chunks = CHUNKS.get_or_init(|| RwLock::new(Vec::new()));
    if let Some(&t) = chunks.read().expect("zobrist lock").get(c) {
        return t;
    }
    let mut w = chunks.write().expect("zobrist lock");
    while w.len() <= c {
        let next = w.len();
        w.push(generate_chunk(next));
    }
    w[c]
}

/// The Zobrist `u64` for Pauli site `(qubit, idx)` with `X=0, Y=1, Z=2`.
#[inline]
fn site(q: usize, idx: usize) -> u64 {
    chunk_tables(q / CHUNK_QUBITS)[q % CHUNK_QUBITS][idx]
}

/// SplitMix64-style finalizer: diffuses the XOR accumulator so structured
/// mask patterns do not produce structured digests.
fn mix(mut h: u64) -> u64 {
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^= h >> 31;
    h
}

/// The Zobrist hash of one term: XOR of the `(qubit, Pauli)` table entries
/// over the string's support, accumulated word-parallel (one
/// `trailing_zeros` loop per 64-qubit word). The identity string hashes to
/// zero.
pub fn term_hash(p: &PauliString) -> u64 {
    let mut h = 0u64;
    let (x, z) = (p.x_mask(), p.z_mask());
    let nwords = x.words().len().max(z.words().len());
    for wi in 0..nwords {
        let (xw, zw) = (x.word(wi), z.word(wi));
        let mut support = xw | zw;
        while support != 0 {
            let b = support.trailing_zeros() as usize;
            support &= support - 1;
            // X=0, Y=1, Z=2 (Y has both bits set).
            let idx = match (xw >> b & 1 == 1, zw >> b & 1 == 1) {
                (true, false) => 0,
                (true, true) => 1,
                (false, true) => 2,
                (false, false) => unreachable!("bit came from the support mask"),
            };
            h ^= site(wi * WORD_BITS + b, idx);
        }
    }
    h
}

/// An incremental, order-insensitive Zobrist accumulator over a multiset of
/// terms. Insertion and removal are the same XOR, so maintaining the hash
/// of an evolving program costs O(weight) per update.
///
/// # Examples
///
/// ```
/// use phoenix_pauli::canon::ZobristAcc;
/// use phoenix_pauli::PauliString;
///
/// let a: PauliString = "XZ".parse().unwrap();
/// let b: PauliString = "YY".parse().unwrap();
/// let mut fwd = ZobristAcc::new();
/// fwd.insert(&a);
/// fwd.insert(&b);
/// let mut rev = ZobristAcc::new();
/// rev.insert(&b);
/// rev.insert(&a);
/// assert_eq!(fwd.digest(2), rev.digest(2)); // order-insensitive
/// fwd.remove(&b);
/// let mut solo = ZobristAcc::new();
/// solo.insert(&a);
/// assert_eq!(fwd.digest(2), solo.digest(2)); // XOR-composable
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ZobristAcc {
    acc: u64,
    count: u64,
}

impl ZobristAcc {
    /// The empty accumulator.
    pub fn new() -> Self {
        ZobristAcc::default()
    }

    /// Folds a term in.
    pub fn insert(&mut self, p: &PauliString) {
        self.acc ^= term_hash(p);
        self.count = self.count.wrapping_add(1);
    }

    /// Folds a term out (the inverse of [`ZobristAcc::insert`]).
    pub fn remove(&mut self, p: &PauliString) {
        self.acc ^= term_hash(p);
        self.count = self.count.wrapping_sub(1);
    }

    /// XORs another accumulator in — the group-level composition law:
    /// a program's accumulator equals its groups' accumulators combined.
    pub fn combine(&mut self, other: &ZobristAcc) {
        self.acc ^= other.acc;
        self.count = self.count.wrapping_add(other.count);
    }

    /// Number of inserted terms.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether no terms were inserted.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The finalized digest for a program over `n` qubits.
    pub fn digest(&self, n: usize) -> u64 {
        mix(self.acc ^ mix(self.count) ^ mix((n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }
}

/// The canonical angle-erased form of a program: the ordered `(x, z)` mask
/// sequence of its terms plus the register width, with a precomputed
/// Zobrist digest.
///
/// `Hash` writes only the digest (cheap bucketing); `Eq` compares the full
/// mask sequence, so digest collisions degrade to cache misses rather than
/// wrong hits.
#[derive(Debug, Clone)]
pub struct CanonicalIr {
    n: usize,
    masks: Vec<(QubitMask, QubitMask)>,
    digest: u64,
}

impl CanonicalIr {
    /// Canonicalizes `terms` over `n` qubits, erasing coefficients.
    pub fn from_terms(n: usize, terms: &[(PauliString, f64)]) -> Self {
        let mut acc = ZobristAcc::new();
        let masks = terms
            .iter()
            .map(|(p, _)| {
                acc.insert(p);
                (p.x_mask().clone(), p.z_mask().clone())
            })
            .collect();
        CanonicalIr {
            n,
            masks,
            digest: acc.digest(n),
        }
    }

    /// Register width.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of terms (identity terms included).
    pub fn num_terms(&self) -> usize {
        self.masks.len()
    }

    /// The finalized Zobrist digest.
    pub fn digest(&self) -> u64 {
        self.digest
    }
}

impl PartialEq for CanonicalIr {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest && self.n == other.n && self.masks == other.masks
    }
}

impl Eq for CanonicalIr {}

impl Hash for CanonicalIr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.digest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ps(l: &str) -> PauliString {
        l.parse().unwrap()
    }

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (ps(l), 0.1 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn identity_hashes_to_zero() {
        assert_eq!(term_hash(&PauliString::identity(5)), 0);
    }

    #[test]
    fn term_hash_distinguishes_paulis_and_sites() {
        let h = [
            term_hash(&ps("XI")),
            term_hash(&ps("YI")),
            term_hash(&ps("ZI")),
            term_hash(&ps("IX")),
        ];
        for i in 0..h.len() {
            for j in i + 1..h.len() {
                assert_ne!(h[i], h[j]);
            }
        }
    }

    #[test]
    fn chunk0_digests_are_stable() {
        // Golden digest values produced by the fixed-width (u128)
        // implementation: the chunk-0 table must reproduce them exactly,
        // or every persisted cache address for n ≤ 128 silently changes.
        let mut rng = Xoshiro256::seed_from_u64(ZOBRIST_SEED);
        assert_eq!(site(0, 0), rng.next_u64());
        assert_eq!(site(0, 1), rng.next_u64());
        assert_eq!(site(0, 2), rng.next_u64());
        assert_eq!(site(1, 0), rng.next_u64());
    }

    #[test]
    fn wide_sites_are_distinct_across_chunks() {
        // Qubit 128 lives in chunk 1; its sites must not collide with the
        // start of chunk 0 (a fresh identical seed would alias them).
        assert_ne!(site(128, 0), site(0, 0));
        assert_ne!(site(129, 1), site(1, 1));
        let mut wide = PauliString::identity(200);
        wide.set(150, crate::Pauli::X);
        let mut narrow = PauliString::identity(200);
        narrow.set(22, crate::Pauli::X); // 150 % 128 = 22
        assert_ne!(term_hash(&wide), term_hash(&narrow));
    }

    #[test]
    fn digest_ignores_coefficients() {
        let a = CanonicalIr::from_terms(2, &[(ps("XZ"), 0.5)]);
        let b = CanonicalIr::from_terms(2, &[(ps("XZ"), -3.25)]);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_mixes_width_and_count() {
        let one = CanonicalIr::from_terms(3, &terms(&["XYZ"]));
        let twice = CanonicalIr::from_terms(3, &terms(&["XYZ", "XYZ"]));
        assert_ne!(one.digest(), twice.digest());
        let empty3 = CanonicalIr::from_terms(3, &[]);
        let empty5 = CanonicalIr::from_terms(5, &[]);
        assert_ne!(empty3.digest(), empty5.digest());
    }

    #[test]
    fn eq_is_order_sensitive_but_digest_is_not() {
        let ab = CanonicalIr::from_terms(2, &terms(&["XZ", "YY"]));
        let ba = CanonicalIr::from_terms(2, &terms(&["YY", "XZ"]));
        assert_eq!(ab.digest(), ba.digest());
        assert_ne!(ab, ba);
    }

    #[test]
    fn accumulator_composes_over_a_partition() {
        let all = ["XZI", "YYI", "IIZ", "IIX"];
        let mut whole = ZobristAcc::new();
        for l in all {
            whole.insert(&ps(l));
        }
        let mut left = ZobristAcc::new();
        left.insert(&ps("XZI"));
        left.insert(&ps("YYI"));
        let mut right = ZobristAcc::new();
        right.insert(&ps("IIZ"));
        right.insert(&ps("IIX"));
        let mut combined = left;
        combined.combine(&right);
        assert_eq!(combined.digest(3), whole.digest(3));
    }

    #[test]
    fn insert_remove_roundtrip_wide() {
        let mut wide = PauliString::identity(400);
        wide.set(5, crate::Pauli::Y);
        wide.set(201, crate::Pauli::Z);
        wide.set(399, crate::Pauli::X);
        let mut acc = ZobristAcc::new();
        acc.insert(&ps("XY").embed(400, &[0, 1]));
        let before = acc;
        acc.insert(&wide);
        acc.remove(&wide);
        assert_eq!(acc, before);
        assert!(!acc.is_empty());
        assert_eq!(acc.len(), 1);
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut acc = ZobristAcc::new();
        acc.insert(&ps("XY"));
        let before = acc;
        acc.insert(&ps("ZZ"));
        acc.remove(&ps("ZZ"));
        assert_eq!(acc, before);
        assert!(!acc.is_empty());
        assert_eq!(acc.len(), 1);
    }
}
