//! Property tests for the Zobrist canonical-IR hash (`canon` module).
//!
//! The cache keys whole programs and groups by these digests, so the
//! properties below are load-bearing for correctness (a spurious collision
//! would be caught by `CanonicalIr::eq`, but a *systematic* one would turn
//! every lookup into a miss) — and for soundness of the incremental
//! accumulator (insert/remove/combine must agree with batch hashing).

use std::collections::HashSet;

use phoenix_pauli::{term_hash, CanonicalIr, PauliString, ZobristAcc};
use proptest::prelude::*;

const N: usize = 8;

fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0usize..4, n).prop_map(|codes| {
        let label: String = codes.iter().map(|&c| ['I', 'X', 'Y', 'Z'][c]).collect();
        label.parse().expect("valid label")
    })
}

fn program(n: usize) -> impl Strategy<Value = Vec<(PauliString, f64)>> {
    proptest::collection::vec(pauli_string(n), 1..10)
        .prop_map(|ps| ps.into_iter().map(|p| (p, 0.1)).collect())
}

/// Deterministic Fisher–Yates driven by a test-supplied seed (the vendored
/// proptest has no shuffle strategy).
fn shuffled<T: Clone>(items: &[T], mut seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        out.swap(i, j);
    }
    out
}

/// Rotate every string's qubit sites by `k` (a relabeling π(q) = q+k mod n).
fn relabeled(terms: &[(PauliString, f64)], k: usize) -> Vec<(PauliString, f64)> {
    terms
        .iter()
        .map(|(p, c)| {
            let label: Vec<char> = p.label().chars().collect();
            let n = label.len();
            let rotated: String = (0..n).map(|q| label[(q + n - k % n) % n]).collect();
            (rotated.parse().expect("valid label"), *c)
        })
        .collect()
}

/// Order-insensitive fingerprint of a program's strings, used to decide
/// whether two generated programs are "the same" for collision purposes.
fn sorted_labels(terms: &[(PauliString, f64)]) -> Vec<String> {
    let mut labels: Vec<String> = terms.iter().map(|(p, _)| p.label()).collect();
    labels.sort();
    labels
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn digest_is_invariant_under_term_permutation(
        terms in program(N),
        seed in 0u64..u64::MAX,
    ) {
        let permuted = shuffled(&terms, seed);
        let a = CanonicalIr::from_terms(N, &terms);
        let b = CanonicalIr::from_terms(N, &permuted);
        prop_assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn digest_ignores_coefficients(terms in program(N), scale in -4.0f64..4.0) {
        let rescaled: Vec<(PauliString, f64)> =
            terms.iter().map(|(p, c)| (p.clone(), c * scale)).collect();
        prop_assert_eq!(
            CanonicalIr::from_terms(N, &terms).digest(),
            CanonicalIr::from_terms(N, &rescaled).digest()
        );
    }

    #[test]
    fn insert_then_remove_is_the_identity(
        terms in program(N),
        extra in pauli_string(N),
    ) {
        let mut acc = ZobristAcc::new();
        for (p, _) in &terms {
            acc.insert(p);
        }
        let before = acc.digest(N);
        acc.insert(&extra);
        acc.remove(&extra);
        prop_assert_eq!(acc.digest(N), before);
        prop_assert_eq!(acc.len(), terms.len() as u64);
    }

    #[test]
    fn combine_composes_over_any_partition(
        terms in program(N),
        cut in 0usize..10,
    ) {
        let cut = cut.min(terms.len());
        let mut left = ZobristAcc::new();
        for (p, _) in &terms[..cut] {
            left.insert(p);
        }
        let mut right = ZobristAcc::new();
        for (p, _) in &terms[cut..] {
            right.insert(p);
        }
        let mut whole = ZobristAcc::new();
        for (p, _) in &terms {
            whole.insert(p);
        }
        left.combine(&right);
        prop_assert_eq!(left.digest(N), whole.digest(N));
    }

    #[test]
    fn relabeling_qubits_changes_the_digest(
        terms in program(N),
        k in 1usize..N,
    ) {
        let moved = relabeled(&terms, k);
        // A rotation can map the program onto itself (e.g. all-identity or
        // translation-symmetric strings); only genuinely different programs
        // must hash differently.
        prop_assume!(sorted_labels(&moved) != sorted_labels(&terms));
        prop_assert_ne!(
            CanonicalIr::from_terms(N, &terms).digest(),
            CanonicalIr::from_terms(N, &moved).digest()
        );
    }

    #[test]
    fn term_hash_agrees_with_singleton_accumulator(p in pauli_string(N)) {
        let mut acc = ZobristAcc::new();
        acc.insert(&p);
        let mut again = ZobristAcc::new();
        again.insert(&p);
        prop_assert_eq!(acc.digest(N), again.digest(N));
        // The term hash is exactly the accumulator's XOR payload for a
        // single string, so a second insert cancels it.
        acc.remove(&p);
        prop_assert_eq!(term_hash(&p) ^ term_hash(&p), 0);
        prop_assert!(acc.is_empty());
    }
}

#[test]
fn no_digest_collisions_across_10k_random_programs() {
    // 10_000 distinct random programs (distinct as *multisets* of strings —
    // the digest is deliberately order-insensitive) must produce 10_000
    // distinct digests. With 64-bit digests the collision probability is
    // ~2.7e-12; a failure indicates a systematic weakness, not bad luck.
    let mut seed = 0x5eed_cafe_f00d_u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        seed
    };
    let n = 10usize;
    let mut seen_programs: HashSet<Vec<String>> = HashSet::new();
    let mut digests: HashSet<u64> = HashSet::new();
    while seen_programs.len() < 10_000 {
        let num_terms = 1 + (next() as usize) % 8;
        let terms: Vec<(PauliString, f64)> = (0..num_terms)
            .map(|_| {
                let label: String = (0..n)
                    .map(|_| ['I', 'X', 'Y', 'Z'][(next() as usize) % 4])
                    .collect();
                (label.parse().unwrap(), 1.0)
            })
            .collect();
        let mut key: Vec<String> = terms.iter().map(|(p, _)| p.label()).collect();
        key.sort();
        if !seen_programs.insert(key) {
            continue; // duplicate program; a shared digest would be correct
        }
        digests.insert(CanonicalIr::from_terms(n, &terms).digest());
    }
    assert_eq!(digests.len(), 10_000, "digest collision detected");
}
