//! Shift-overflow boundary audit: every mask operation that historically
//! relied on `u128` shifts (`mask_below`, `1 << n`) must be well-defined at
//! the word boundaries `n ∈ {63, 64, 127, 128}` and one step past each.
//!
//! Rust panics (debug) or wraps (release) on a shift by ≥ the type width,
//! so `1u64 << 64` and `(1u128 << 128) - 1` were latent landmines at
//! exactly the widths where the packed representation changes shape. These
//! tests pin the packed kernels at those seams.

use phoenix_pauli::{
    mask::words_for, Bsf, BsfError, BsfRow, Pauli, PauliString, QubitMask, MAX_QUBITS,
};

const BOUNDARY_WIDTHS: [usize; 8] = [63, 64, 65, 127, 128, 129, 191, 192];

#[test]
fn ones_is_exact_at_every_word_boundary() {
    for n in BOUNDARY_WIDTHS {
        let m = QubitMask::ones(n);
        assert_eq!(m.count_ones() as usize, n, "ones({n}) has wrong popcount");
        assert!(m.bit(n - 1), "ones({n}) misses its top bit");
        assert!(!m.bit(n), "ones({n}) leaks past the boundary");
        assert_eq!(m.max_bit(), Some(n - 1));
        if n <= 128 {
            // Exactly the value `(1 << n) - 1` would have produced, without
            // the undefined shift at n = 128.
            let expect = if n == 128 {
                u128::MAX
            } else {
                (1u128 << n) - 1
            };
            assert_eq!(m.low_u128(), expect, "ones({n}) != mask_below({n})");
        }
    }
}

#[test]
fn single_bit_is_exact_at_every_word_boundary() {
    for n in BOUNDARY_WIDTHS {
        let q = n - 1;
        let m = QubitMask::single(q);
        assert_eq!(m.count_ones(), 1);
        assert!(m.bit(q));
        assert_eq!(m.max_bit(), Some(q));
        assert_eq!(m.to_indices(), vec![q]);
    }
}

#[test]
fn top_qubit_round_trips_through_string_api() {
    for n in BOUNDARY_WIDTHS {
        for p in [Pauli::X, Pauli::Y, Pauli::Z] {
            let s = PauliString::single(n, n - 1, p);
            assert_eq!(s.get(n - 1), p, "n={n}");
            assert_eq!(s.weight(), 1, "n={n}");
            assert_eq!(s.support(), vec![n - 1], "n={n}");
            // The top-qubit string must anticommute with its symplectic
            // partner and commute with everything strictly below.
            let partner = match p {
                Pauli::X | Pauli::Y => Pauli::Z,
                _ => Pauli::X,
            };
            assert!(
                !s.commutes(&PauliString::single(n, n - 1, partner)),
                "n={n}"
            );
            if n >= 2 {
                assert!(s.commutes(&PauliString::single(n, n - 2, partner)), "n={n}");
            }
        }
    }
}

#[test]
fn conjugation_across_the_boundary_qubit_pair() {
    // A 2Q Clifford straddling a word boundary (q, q+1) = (63, 64) and
    // (127, 128) must act exactly as on an adjacent in-word pair.
    use phoenix_pauli::{Clifford2Q, CLIFFORD2Q_GENERATORS};
    for q in [63usize, 127] {
        let n = q + 2;
        for kind in CLIFFORD2Q_GENERATORS {
            for (pa, pb) in [
                (Pauli::X, Pauli::Z),
                (Pauli::Y, Pauli::Y),
                (Pauli::Z, Pauli::X),
            ] {
                let mut wide = PauliString::identity(n);
                wide.set(q, pa);
                wide.set(q + 1, pb);
                let (wout, wsign) = Clifford2Q::new(kind, q, q + 1).conjugate_string(&wide);

                let mut narrow = PauliString::identity(2);
                narrow.set(0, pa);
                narrow.set(1, pb);
                let (nout, nsign) = Clifford2Q::new(kind, 0, 1).conjugate_string(&narrow);

                assert_eq!(wsign, nsign, "q={q} kind={kind:?}");
                assert_eq!(wout.get(q), nout.get(0), "q={q} kind={kind:?}");
                assert_eq!(wout.get(q + 1), nout.get(1), "q={q} kind={kind:?}");
                assert_eq!(wout.weight(), nout.weight(), "q={q} kind={kind:?}");
            }
        }
    }
}

#[test]
fn row_support_is_exact_at_the_top_word() {
    for n in BOUNDARY_WIDTHS {
        let row = BsfRow::from_packed(QubitMask::single(n - 1), QubitMask::ones(n), 0.5);
        assert_eq!(row.weight(), n);
        assert_eq!(row.support_mask().count_ones() as usize, n);
        assert_eq!(words_for(n), n.div_ceil(64).max(2));
    }
}

#[test]
fn width_cap_is_a_typed_error_not_a_panic() {
    // One past the cap: every try-constructor reports the width instead of
    // panicking.
    let over = MAX_QUBITS + 1;
    let err = PauliString::try_identity(over).unwrap_err();
    assert_eq!(err.num_qubits, over);
    let err = Bsf::from_terms(over, vec![]).unwrap_err();
    assert_eq!(err, BsfError::UnsupportedWidth { num_qubits: over });
    // At the cap: fine.
    assert!(PauliString::try_identity(MAX_QUBITS).is_ok());
}

#[test]
fn oversized_strings_are_rejected_with_the_offending_width() {
    // A mask whose top bit is at or past `n` must be rejected, reporting
    // the width the mask actually needs.
    let x = QubitMask::single(128);
    let err = PauliString::try_from_packed(128, x, QubitMask::zeros(128)).unwrap_err();
    assert_eq!(err.num_qubits, 129);
}
