//! Differential property tests pinning the word-parallel packed-mask
//! kernels against scalar per-qubit references, across register widths
//! straddling every representation boundary (inline single-word, inline
//! two-word, heap-backed).
//!
//! Each kernel under test (commutation, conjugation, weight, nibble
//! extraction, Zobrist digests) is recomputed qubit-by-qubit through the
//! public per-qubit API, so a word-packing bug (shift off-by-one, missed
//! carry across a word boundary, trailing-word garbage) shows up as a
//! divergence from the scalar answer.

use phoenix_pauli::{
    fold_conjugation_sign, Bsf, BsfRow, Clifford2Q, Pauli, PauliString, QubitMask, ZobristAcc,
    CLIFFORD2Q_GENERATORS,
};
use proptest::prelude::*;

/// Widths covering both inline words, the heap spill, and the word
/// boundaries on either side.
const WIDTHS: [usize; 14] = [1, 2, 3, 5, 8, 63, 64, 65, 127, 128, 129, 192, 300, 512];

/// Raw generator material for one wide Pauli string: a width selector plus
/// sparse `(site, pauli)` pairs (sites reduced modulo the width).
type RawString = (usize, Vec<(usize, usize)>);

fn raw_string() -> impl Strategy<Value = RawString> {
    (
        0usize..WIDTHS.len(),
        proptest::collection::vec((0usize..4096, 1usize..4), 0..12),
    )
}

/// Materializes raw generator output through the per-qubit `set` API
/// (never through mask words).
fn build(n: usize, sites: &[(usize, usize)]) -> PauliString {
    let mut p = PauliString::identity(n);
    for &(q, k) in sites {
        p.set(q % n, [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][k]);
    }
    p
}

/// Scalar reference: symplectic commutation by per-qubit anticommutation
/// counting.
fn commutes_scalar(a: &PauliString, b: &PauliString) -> bool {
    let mut anti = 0usize;
    for q in 0..a.num_qubits() {
        let (pa, pb) = (a.get(q), b.get(q));
        if pa != Pauli::I && pb != Pauli::I && pa != pb {
            anti += 1;
        }
    }
    anti.is_multiple_of(2)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn commutation_matches_scalar_reference(
        (sel, sa) in raw_string(),
        sb in proptest::collection::vec((0usize..4096, 1usize..4), 0..12)
    ) {
        let n = WIDTHS[sel];
        let a = build(n, &sa);
        let b = build(n, &sb);
        prop_assert_eq!(a.commutes(&b), commutes_scalar(&a, &b));
    }

    #[test]
    fn weight_matches_scalar_reference((sel, sites) in raw_string()) {
        let n = WIDTHS[sel];
        let p = build(n, &sites);
        let scalar = (0..n).filter(|&q| p.get(q) != Pauli::I).count();
        prop_assert_eq!(p.weight(), scalar);
    }

    #[test]
    fn conjugation_matches_narrow_window(
        (sel, sites) in raw_string(),
        (a_raw, b_raw, kind) in (0usize..4096, 0usize..4096, 0usize..6)
    ) {
        // Conjugating by a 2Q Clifford on qubits (a, b) must act on the
        // wide string exactly as it acts on the 2-qubit window (a, b) of a
        // narrow string, leaving every other site untouched.
        let n = WIDTHS[sel].max(2);
        let p = build(n, &sites);
        let a = a_raw % n;
        let b_try = b_raw % n;
        let b = if b_try == a { (a + 1) % n } else { b_try };
        let cliff = Clifford2Q::new(CLIFFORD2Q_GENERATORS[kind], a, b);
        let (wide, sign) = cliff.conjugate_string(&p);

        let mut narrow = PauliString::identity(2);
        narrow.set(0, p.get(a));
        narrow.set(1, p.get(b));
        let narrow_cliff = Clifford2Q::new(CLIFFORD2Q_GENERATORS[kind], 0, 1);
        let (narrow_out, narrow_sign) = narrow_cliff.conjugate_string(&narrow);

        prop_assert_eq!(sign, narrow_sign);
        prop_assert_eq!(wide.get(a), narrow_out.get(0));
        prop_assert_eq!(wide.get(b), narrow_out.get(1));
        for q in 0..n {
            if q != a && q != b {
                prop_assert_eq!(wide.get(q), p.get(q), "site {} moved", q);
            }
        }
    }

    #[test]
    fn nibble_matches_per_qubit_paulis(
        (sel, sites) in raw_string(),
        (a_raw, b_raw) in (0usize..4096, 0usize..4096)
    ) {
        let n = WIDTHS[sel].max(2);
        let p = build(n, &sites);
        let a = a_raw % n;
        let b_try = b_raw % n;
        let b = if b_try == a { (a + 1) % n } else { b_try };
        let row = BsfRow::from_packed(p.x_mask().clone(), p.z_mask().clone(), 1.0);
        let nib = row.nibble(a, b);
        // Nibble layout: `x_a | z_a·2 | x_b·4 | z_b·8`.
        let pauli_of = |x: bool, z: bool| match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        };
        prop_assert_eq!(pauli_of(nib & 1 != 0, nib >> 1 & 1 != 0), p.get(a));
        prop_assert_eq!(pauli_of(nib >> 2 & 1 != 0, nib >> 3 & 1 != 0), p.get(b));
    }

    #[test]
    fn zobrist_digest_is_order_independent_and_wide(
        sel in 0usize..WIDTHS.len(),
        raws in proptest::collection::vec(
            proptest::collection::vec((0usize..4096, 1usize..4), 0..8),
            1..6,
        )
    ) {
        // The accumulator digest must be insertion-order independent at any
        // width, and inserting then removing a term must return to the
        // previous digest (XOR composability across word chunks).
        let n = WIDTHS[sel];
        let strings: Vec<PauliString> = raws.iter().map(|s| build(n, s)).collect();
        let mut fwd = ZobristAcc::default();
        for p in &strings {
            fwd.insert(p);
        }
        let mut rev = ZobristAcc::default();
        for p in strings.iter().rev() {
            rev.insert(p);
        }
        prop_assert_eq!(fwd.digest(n), rev.digest(n));

        let before = fwd.digest(n);
        let extra = PauliString::single(n, n - 1, Pauli::Y);
        fwd.insert(&extra);
        prop_assert_ne!(fwd.digest(n), before);
        fwd.remove(&extra);
        prop_assert_eq!(fwd.digest(n), before);
    }

    #[test]
    fn tableau_conjugation_preserves_sign_folding(
        sel in 0usize..WIDTHS.len(),
        raws in proptest::collection::vec(
            (proptest::collection::vec((0usize..4096, 1usize..4), 0..8), -1.0f64..1.0),
            1..5,
        ),
        (a_raw, b_raw, kind) in (0usize..4096, 0usize..4096, 0usize..6)
    ) {
        // Folding a conjugation sign into the coefficient is equivalent to
        // tracking it separately — pin the fold helper against the tableau,
        // at any width and any qubit pair.
        let n = WIDTHS[sel].max(2);
        let a = a_raw % n;
        let b_try = b_raw % n;
        let b = if b_try == a { (a + 1) % n } else { b_try };
        let terms: Vec<(PauliString, f64)> =
            raws.iter().map(|(s, c)| (build(n, s), *c)).collect();
        let mut bsf = Bsf::from_terms(n, terms.iter().cloned()).unwrap();
        let cliff = Clifford2Q::new(CLIFFORD2Q_GENERATORS[kind], a, b);
        bsf.apply_clifford2q(cliff);
        for ((p, c), row) in terms.iter().zip(bsf.rows()) {
            let (conj, sign) = cliff.conjugate_string(p);
            prop_assert_eq!(conj.x_mask(), row.x_mask());
            prop_assert_eq!(conj.z_mask(), row.z_mask());
            prop_assert!((fold_conjugation_sign(*c, sign) - row.coeff()).abs() < 1e-12);
        }
    }

    #[test]
    fn mask_kernels_match_per_bit_reference(
        sel in 0usize..WIDTHS.len(),
        xs in proptest::collection::vec(0usize..4096, 0..16),
        zs in proptest::collection::vec(0usize..4096, 0..16)
    ) {
        let n = WIDTHS[sel];
        let mut x = QubitMask::zeros(n);
        let mut z = QubitMask::zeros(n);
        for &q in &xs { x.set_bit(q % n); }
        for &q in &zs { z.set_bit(q % n); }
        let and_ref = (0..n).filter(|&q| x.bit(q) && z.bit(q)).count() as u32;
        let or_ref = (0..n).filter(|&q| x.bit(q) || z.bit(q)).count() as u32;
        prop_assert_eq!(x.and_count(&z), and_ref);
        prop_assert_eq!(x.or_count(&z), or_ref);
        let par_ref = (0..n).filter(|&q| x.bit(q) && z.bit(q)).count() % 2 == 1;
        prop_assert_eq!(
            QubitMask::symplectic_parity(&x, &QubitMask::zeros(n), &QubitMask::zeros(n), &z),
            par_ref
        );
        let ones: Vec<usize> = x.iter_ones().collect();
        let ones_ref: Vec<usize> = (0..n).filter(|&q| x.bit(q)).collect();
        prop_assert_eq!(ones, ones_ref);
    }
}
