//! Property-based tests of the Pauli/Clifford algebra.

use phoenix_mathkit::Complex;
use phoenix_pauli::{Bsf, Clifford2Q, Pauli, PauliPolynomial, PauliString, CLIFFORD2Q_GENERATORS};
use proptest::prelude::*;

const PHASES: [Complex; 4] = [
    Complex::new(1.0, 0.0),
    Complex::new(0.0, 1.0),
    Complex::new(-1.0, 0.0),
    Complex::new(0.0, -1.0),
];

fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0usize..4, n).prop_map(move |ps| {
        let mut p = PauliString::identity(n);
        for (q, &k) in ps.iter().enumerate() {
            p.set(q, [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][k]);
        }
        p
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Phase-tracked multiplication is associative:
    /// (PQ)R = P(QR) including the i^k phases.
    #[test]
    fn multiplication_is_associative(
        p in pauli_string(6),
        q in pauli_string(6),
        r in pauli_string(6),
    ) {
        let (pq, k1) = p.mul(&q);
        let (pq_r, k2) = pq.mul(&r);
        let left_phase = PHASES[k1 as usize] * PHASES[k2 as usize];

        let (qr, k3) = q.mul(&r);
        let (p_qr, k4) = p.mul(&qr);
        let right_phase = PHASES[k3 as usize] * PHASES[k4 as usize];

        prop_assert_eq!(pq_r, p_qr);
        prop_assert!(left_phase.approx_eq(right_phase, 1e-15));
    }

    /// P·Q and Q·P agree up to the commutator sign.
    #[test]
    fn commutation_matches_product_phases(
        p in pauli_string(5),
        q in pauli_string(5),
    ) {
        let (pq, k1) = p.mul(&q);
        let (qp, k2) = q.mul(&p);
        prop_assert_eq!(pq, qp);
        let sign = PHASES[k1 as usize] / PHASES[k2 as usize];
        if p.commutes(&q) {
            prop_assert!(sign.approx_eq(Complex::ONE, 1e-15));
        } else {
            prop_assert!(sign.approx_eq(-Complex::ONE, 1e-15));
        }
    }

    /// Every string squares to the identity with no phase.
    #[test]
    fn strings_are_involutions(p in pauli_string(7)) {
        let (sq, k) = p.mul(&p);
        prop_assert!(sq.is_identity());
        prop_assert_eq!(k, 0);
    }

    /// Conjugating twice by any Hermitian generator restores every string
    /// with its sign.
    #[test]
    fn clifford_conjugation_is_involutive(
        p in pauli_string(5),
        kind in 0usize..6,
        a in 0usize..5,
        b in 0usize..5,
    ) {
        prop_assume!(a != b);
        let c = Clifford2Q::new(CLIFFORD2Q_GENERATORS[kind], a, b);
        let (q, s1) = c.conjugate_string(&p);
        let (r, s2) = c.conjugate_string(&q);
        prop_assert_eq!(r, p);
        prop_assert_eq!(s1 * s2, 1);
    }

    /// Conjugation preserves weight-counting on untouched qubits.
    #[test]
    fn conjugation_is_local_to_its_pair(
        p in pauli_string(6),
        kind in 0usize..6,
    ) {
        let c = Clifford2Q::new(CLIFFORD2Q_GENERATORS[kind], 1, 4);
        let (q, _) = c.conjugate_string(&p);
        for site in [0usize, 2, 3, 5] {
            prop_assert_eq!(p.get(site), q.get(site), "site {}", site);
        }
    }

    /// Polynomial multiplication distributes over addition.
    #[test]
    fn polynomial_distributivity(
        p in pauli_string(4),
        q in pauli_string(4),
        r in pauli_string(4),
        cp in -2.0f64..2.0,
        cq in -2.0f64..2.0,
    ) {
        let pp = PauliPolynomial::term(4, p, Complex::from_re(cp));
        let qq = PauliPolynomial::term(4, q, Complex::from_re(cq));
        let rr = PauliPolynomial::term(4, r, Complex::ONE);
        let lhs = pp.add(&qq).mul(&rr);
        let rhs = pp.mul(&rr).add(&qq.mul(&rr));
        prop_assert_eq!(lhs, rhs);
    }

    /// A BSF built from terms and read back is the identity transformation.
    #[test]
    fn bsf_roundtrip(strings in proptest::collection::vec(pauli_string(5), 1..6)) {
        let terms: Vec<(PauliString, f64)> = strings
            .iter()
            .enumerate()
            .map(|(i, p)| (p.clone(), 0.1 * (i as f64 + 1.0)))
            .collect();
        let bsf = Bsf::from_terms(5, terms.clone()).unwrap();
        prop_assert_eq!(bsf.to_terms(), terms);
    }

    /// Tableau conjugation preserves total coefficient magnitude and the
    /// multiset of row weights' parity under involution.
    #[test]
    fn bsf_conjugation_roundtrip(
        strings in proptest::collection::vec(pauli_string(5), 1..6),
        kind in 0usize..6,
        a in 0usize..5,
        b in 0usize..5,
    ) {
        prop_assume!(a != b);
        let terms: Vec<(PauliString, f64)> =
            strings.iter().map(|p| (p.clone(), 0.25)).collect();
        let bsf = Bsf::from_terms(5, terms).unwrap();
        let c = Clifford2Q::new(CLIFFORD2Q_GENERATORS[kind], a, b);
        prop_assert_eq!(bsf.conjugated(c).conjugated(c), bsf);
    }

    /// Restrict/embed round-trips through the support.
    #[test]
    fn restrict_embed_roundtrip(p in pauli_string(8)) {
        prop_assume!(!p.is_identity());
        let support = p.support();
        let small = p.restrict(&support);
        prop_assert_eq!(small.weight(), p.weight());
        prop_assert_eq!(small.embed(8, &support), p);
    }

    /// Labels round-trip through parsing.
    #[test]
    fn label_parse_roundtrip(p in pauli_string(9)) {
        let back: PauliString = p.label().parse().unwrap();
        prop_assert_eq!(back, p);
    }
}
