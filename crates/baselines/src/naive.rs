//! The "original circuit": conventional synthesis in program order.

use phoenix_circuit::{synthesis, Circuit};
use phoenix_pauli::PauliString;

/// Synthesizes the program exactly as written — the denominator of every
/// optimization rate in the paper (Table I's `#Gate`/`#CNOT`/`Depth`
/// columns).
///
/// # Examples
///
/// ```
/// use phoenix_baselines::naive;
/// use phoenix_pauli::PauliString;
///
/// let c = naive::compile(3, &[("XYZ".parse::<PauliString>()?, 0.2)]);
/// assert_eq!(c.counts().cnot, 4);
/// # Ok::<(), phoenix_pauli::ParsePauliStringError>(())
/// ```
pub fn compile(n: usize, terms: &[(PauliString, f64)]) -> Circuit {
    synthesis::naive_circuit(n, terms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_is_preserved() {
        let t: Vec<(PauliString, f64)> =
            vec![("ZZI".parse().unwrap(), 0.1), ("IZZ".parse().unwrap(), 0.2)];
        let c = compile(3, &t);
        // First CNOT touches qubits (0,1), later ones (1,2).
        let first = c
            .gates()
            .iter()
            .find(|g| g.is_two_qubit())
            .expect("has cnots");
        assert_eq!(first.qubits(), (0, Some(1)));
    }
}
