//! Baseline VQA compilers for the PHOENIX evaluation.
//!
//! The paper compares PHOENIX against TKET (PauliSimp +
//! FullPeepholeOptimise), Paulihedral (+ Qiskit O2/O3), Tetris (+ O3) and —
//! for QAOA — 2QAN. Those third-party systems are re-implemented here *by
//! strategy*, each capturing the published core idea:
//!
//! - [`naive`]: conventional per-term CNOT-chain synthesis in program order
//!   — the "original circuit" every optimization rate is measured against;
//! - [`tket_style`]: commuting-set gadget blocking with lexicographic
//!   in-set ordering (the PauliSimp strategy);
//! - [`paulihedral_style`]: support-set blocking, lexicographic in-block
//!   ordering and overlap-maximizing block chaining (the Paulihedral GCO
//!   strategy);
//! - [`tetris_style`]: routing-co-design ordering with cancellation-
//!   oblivious tree construction (strong on SWAP locality, weak at the
//!   logical level — exactly the trade-off the paper reports);
//! - [`twoqan_style`]: the 2-local specialist — edge-coloring depth-optimal
//!   layers for QAOA programs.
//!
//! Every baseline emits plain `{1Q, CNOT}` circuits; the shared
//! [`hardware_aware`] wrapper applies the same peephole ("O3") + SABRE
//! pipeline used for PHOENIX, so comparisons isolate the compilation
//! strategy.

pub mod naive;
pub mod paulihedral_style;
pub mod tetris_style;
pub mod tket_style;
pub mod twoqan_style;

use phoenix_circuit::Circuit;
use phoenix_core::{CompilerStrategy, HardwareProgram, PhoenixCompiler};
use phoenix_pauli::PauliString;
use phoenix_router::RouterOptions;
use phoenix_topology::CouplingGraph;

/// The compiler strategies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Baseline {
    /// Conventional synthesis in program order (the "original circuit").
    Naive,
    /// TKET-style PauliSimp.
    TketStyle,
    /// Paulihedral-style block-wise optimization.
    PaulihedralStyle,
    /// Tetris-style routing co-design.
    TetrisStyle,
    /// 2QAN-style 2-local specialist.
    TwoQanStyle,
}

impl Baseline {
    /// Display name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            Baseline::Naive => "original",
            Baseline::TketStyle => "TKET-style",
            Baseline::PaulihedralStyle => "Paulihedral-style",
            Baseline::TetrisStyle => "Tetris-style",
            Baseline::TwoQanStyle => "2QAN-style",
        }
    }

    /// Logical compilation to `{1Q, CNOT}` (no final peephole — harnesses
    /// decide whether to attach the "O3" pass, as the paper's Table II
    /// ablates).
    pub fn compile_logical(self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        match self {
            Baseline::Naive => naive::compile(n, terms),
            Baseline::TketStyle => tket_style::compile(n, terms),
            Baseline::PaulihedralStyle => paulihedral_style::compile(n, terms),
            Baseline::TetrisStyle => tetris_style::compile(n, terms),
            Baseline::TwoQanStyle => twoqan_style::compile(n, terms),
        }
    }
}

impl CompilerStrategy for Baseline {
    fn name(&self) -> &str {
        Baseline::name(*self)
    }

    fn compile_logical(&self, n: usize, terms: &[(PauliString, f64)]) -> Circuit {
        Baseline::compile_logical(*self, n, terms)
    }
}

/// PHOENIX followed by the four general-purpose baselines, as trait
/// objects — the column set of the paper's main tables. Harness code
/// iterates these instead of matching on [`Baseline`].
pub fn strategies() -> Vec<Box<dyn CompilerStrategy>> {
    vec![
        Box::new(Baseline::Naive),
        Box::new(Baseline::TketStyle),
        Box::new(Baseline::PaulihedralStyle),
        Box::new(Baseline::TetrisStyle),
        Box::new(PhoenixCompiler::default()),
    ]
}

/// The shared hardware-aware back end: peephole ("O3"), SABRE routing,
/// SWAP lowering, final peephole — identical to PHOENIX's back end so that
/// strategy differences dominate. Delegates to the pass sequence of
/// [`phoenix_core::hardware_backend`].
///
/// # Panics
///
/// Panics if the device is smaller than the program.
pub fn hardware_aware(logical: &Circuit, device: &CouplingGraph) -> HardwareProgram {
    phoenix_core::run_hardware_backend(logical, device, &RouterOptions::default(), 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.05 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn every_baseline_compiles_a_small_program() {
        let t = terms(&["XXYY", "YYXX", "ZZII", "IIZZ", "XIIX"]);
        for b in [
            Baseline::Naive,
            Baseline::TketStyle,
            Baseline::PaulihedralStyle,
            Baseline::TetrisStyle,
        ] {
            let c = b.compile_logical(4, &t);
            assert!(c.counts().cnot > 0, "{}", b.name());
            // Lowered output only.
            assert_eq!(
                c.counts().clifford2 + c.counts().pauli_rot2 + c.counts().su4,
                0
            );
        }
    }

    #[test]
    fn hardware_wrapper_respects_coupling() {
        let t = terms(&["ZZII", "IZZI", "IIZZ", "ZIIZ"]);
        let dev = CouplingGraph::line(4);
        let hw = hardware_aware(&Baseline::Naive.compile_logical(4, &t), &dev);
        for g in hw.circuit.gates() {
            if let (a, Some(b)) = g.qubits() {
                assert!(dev.contains_edge(a, b));
            }
        }
    }
}
