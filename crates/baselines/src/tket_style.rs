//! TKET-style PauliSimp compilation (Cowtan et al., 2019).
//!
//! TKET's `PauliSimp` pass partitions the gadget sequence into mutually
//! commuting sets (so in-set reordering is exact, not just Trotter-free),
//! then synthesizes each set with pairwise gadget constructions whose
//! cancellations `FullPeepholeOptimise` harvests. Our stand-in keeps the
//! commuting-set partition and orders each set lexicographically before
//! chain synthesis.

use phoenix_circuit::Circuit;
use phoenix_pauli::PauliString;

/// Compiles with greedy commuting-set partitioning + lexicographic in-set
/// ordering.
pub fn compile(n: usize, terms: &[(PauliString, f64)]) -> Circuit {
    // Greedy sequential partition into mutually commuting sets.
    let mut sets: Vec<Vec<(PauliString, f64)>> = Vec::new();
    for (p, c) in terms.iter().cloned() {
        match sets
            .iter_mut()
            .find(|s| s.iter().all(|(q, _)| p.commutes(q)))
        {
            Some(s) => s.push((p, c)),
            None => sets.push(vec![(p, c)]),
        }
    }
    let mut out = Circuit::new(n);
    for set in &mut sets {
        // Within a commuting set reordering is exact: bring same-support
        // gadgets together and co-synthesize each run like a gadget pair
        // chain (PauliSimp's pairwise construction).
        set.sort_by_key(|(p, _)| (p.support_mask(), p.label()));
        let mut start = 0;
        while start < set.len() {
            let mask = set[start].0.support_mask();
            let end = start
                + set[start..]
                    .iter()
                    .take_while(|(p, _)| p.support_mask() == mask)
                    .count();
            crate::paulihedral_style::append_block(&mut out, &set[start..end]);
            start = end;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.05 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn commuting_sets_are_exact_partitions() {
        let t = terms(&["XX", "YY", "ZZ", "XY"]);
        let c = compile(2, &t);
        let rz = c
            .gates()
            .iter()
            .filter(|g| {
                matches!(
                    g,
                    phoenix_circuit::Gate::Rz(..)
                        | phoenix_circuit::Gate::Rx(..)
                        | phoenix_circuit::Gate::Ry(..)
                )
            })
            .count();
        assert_eq!(rz, 4, "every gadget synthesized exactly once");
    }

    #[test]
    fn qaoa_all_zz_forms_one_set() {
        // All ZZ terms commute: sorting them together groups shared chains.
        let t = terms(&["ZZII", "IZZI", "IIZZ", "ZIIZ"]);
        let opt = phoenix_circuit::peephole::optimize(&compile(4, &t));
        assert_eq!(
            opt.counts().cnot,
            8,
            "2 CNOTs per edge, nothing shared here"
        );
    }
}
