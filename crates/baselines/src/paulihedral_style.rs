//! Paulihedral-style block-wise compilation (Li et al., ASPLOS'22).
//!
//! Paulihedral's logical pass blocks Pauli strings by qubit support, orders
//! strings lexicographically inside each block so neighbouring CNOT trees
//! share long prefixes/suffixes, and chains blocks by support overlap. The
//! exposed cancellations are then harvested by a gate-cancellation pass
//! (Qiskit O2 in the paper, our peephole here).

use phoenix_circuit::{synthesis, Circuit};
use phoenix_core::group::group_by_support;
use phoenix_pauli::PauliString;

/// Compiles with support blocking + lexicographic in-block ordering +
/// overlap-greedy block chaining.
pub fn compile(n: usize, terms: &[(PauliString, f64)]) -> Circuit {
    let groups = group_by_support(n, terms);
    // Order blocks greedily by support overlap with the previous block,
    // starting from the widest.
    let mut remaining: Vec<usize> = (0..groups.len()).collect();
    remaining.sort_by_key(|&i| std::cmp::Reverse(groups[i].width()));
    let mut order = Vec::with_capacity(groups.len());
    if let Some(first) = remaining.first().copied() {
        remaining.remove(0);
        order.push(first);
        while !remaining.is_empty() {
            let last_mask = groups[*order.last().expect("nonempty")].support_mask();
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, &i)| (groups[i].support_mask() & last_mask).count_ones())
                .expect("remaining nonempty");
            order.push(remaining.remove(pos));
        }
    }

    let mut out = Circuit::new(n);
    for gi in order {
        append_block(&mut out, groups[gi].terms());
    }
    out
}

/// Synthesizes one same-support block with the tree-shaping heuristic:
/// qubits whose Pauli is stable across the block form the outer chain
/// segment (it cancels between every neighbouring pair), volatile qubits
/// sit near the root; strings are ordered so neighbours differ as close to
/// the root as possible.
pub(crate) fn append_block(out: &mut Circuit, block: &[(PauliString, f64)]) {
    if block.is_empty() {
        return;
    }
    let support = block[0].0.support();
    // Volatility: how many distinct Paulis appear on each support qubit.
    let volatility = |q: usize| {
        let mut seen = [false; 4];
        for (p, _) in block {
            seen[p.get(q) as usize] = true;
        }
        seen.iter().filter(|&&s| s).count()
    };
    let mut chain = support.clone();
    chain.sort_by_key(|&q| (volatility(q), q));
    // Sort strings by their Paulis along the chain, most-rooted qubit last,
    // so lexicographic neighbours differ at root-adjacent positions.
    let mut terms: Vec<&(PauliString, f64)> = block.iter().collect();
    terms.sort_by_key(|(p, _)| {
        chain
            .iter()
            .map(|&q| p.get(q).to_char())
            .collect::<String>()
    });
    for (p, c) in terms {
        synthesis::append_pauli_rotation_tree(out, p, *c, &chain);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::peephole;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.05 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn same_support_blocks_expose_cancellation() {
        // Terms ZZZZ and ZZZY share a long CNOT chain: after peephole, the
        // blocked order must beat the interleaved naive order.
        let t = terms(&["ZZZZ", "XIXI", "ZZZY", "XIYI"]);
        let blocked = peephole::optimize(&compile(4, &t));
        let naive = peephole::optimize(&crate::naive::compile(4, &t));
        assert!(
            blocked.counts().cnot <= naive.counts().cnot,
            "blocked {} vs naive {}",
            blocked.counts().cnot,
            naive.counts().cnot
        );
    }

    #[test]
    fn all_terms_are_synthesized() {
        let t = terms(&["XX", "YY", "ZZ"]);
        let c = compile(2, &t);
        let rz = c
            .gates()
            .iter()
            .filter(|g| matches!(g, phoenix_circuit::Gate::Rz(..)))
            .count();
        assert_eq!(rz, 3, "one Rz per term");
    }
}
