//! 2QAN-style compilation for 2-local Hamiltonians (Lao & Browne, ISCA'22).
//!
//! 2QAN exploits the permutation freedom of 2-local simulation programs:
//! logically, one QAOA Trotter step is scheduled depth-optimally by greedy
//! edge coloring (each color class is a parallel layer of ZZ interactions).
//! Our stand-in reproduces that logical scheduling; the shared SABRE back
//! end provides the routing stage.

use phoenix_circuit::{synthesis, Circuit};
use phoenix_pauli::{PauliString, QubitMask};

/// Compiles a 2-local program with edge-coloring layering.
///
/// Terms of weight ≠ 2 are appended after the colored layers (2QAN targets
/// 2-local programs; 1Q terms are free anyway).
pub fn compile(n: usize, terms: &[(PauliString, f64)]) -> Circuit {
    let mut twoq: Vec<&(PauliString, f64)> = Vec::new();
    let mut rest: Vec<&(PauliString, f64)> = Vec::new();
    for t in terms {
        if t.0.weight() == 2 {
            twoq.push(t);
        } else {
            rest.push(t);
        }
    }
    // Greedy edge coloring: repeatedly extract a maximal matching.
    let mut layers: Vec<Vec<&(PauliString, f64)>> = Vec::new();
    let mut remaining = twoq;
    while !remaining.is_empty() {
        let mut used = QubitMask::default();
        let mut layer = Vec::new();
        let mut next = Vec::new();
        for t in remaining {
            let mask = t.0.support_mask();
            if !used.intersects(&mask) {
                used.or_with(&mask);
                layer.push(t);
            } else {
                next.push(t);
            }
        }
        layers.push(layer);
        remaining = next;
    }
    let mut out = Circuit::new(n);
    for layer in layers {
        for (p, c) in layer {
            synthesis::append_pauli_rotation(&mut out, p, *c);
        }
    }
    for (p, c) in rest {
        synthesis::append_pauli_rotation(&mut out, p, *c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zz(n: usize, a: usize, b: usize) -> (PauliString, f64) {
        (
            PauliString::from_sparse(
                n,
                &[(a, phoenix_pauli::Pauli::Z), (b, phoenix_pauli::Pauli::Z)],
            ),
            0.3,
        )
    }

    #[test]
    fn ring_schedules_depth_optimally() {
        // A 4-ring is 2-edge-colorable: depth 2 layers × 2 CNOT = 4.
        let t = vec![zz(4, 0, 1), zz(4, 1, 2), zz(4, 2, 3), zz(4, 3, 0)];
        let c = compile(4, &t);
        assert_eq!(c.depth_2q(), 4);
        assert_eq!(c.counts().cnot, 8);
    }

    #[test]
    fn naive_order_is_deeper_on_a_path() {
        let t = vec![zz(4, 0, 1), zz(4, 1, 2), zz(4, 2, 3)];
        let colored = compile(4, &t);
        let naive = crate::naive::compile(4, &t);
        assert!(colored.depth_2q() <= naive.depth_2q());
    }

    #[test]
    fn non_2local_terms_still_compile() {
        let t = vec![zz(3, 0, 1), ("ZZZ".parse::<PauliString>().unwrap(), 0.2)];
        let c = compile(3, &t);
        assert_eq!(c.counts().cnot, 2 + 4);
    }
}
