//! Tetris-style routing co-design compilation (Jin et al., ISCA'24).
//!
//! Tetris optimizes primarily for SWAP reduction during routing: its
//! ordering keeps consecutive IR blocks on nearby qubit sets and its CNOT
//! trees are shaped for mapping, *not* for logical-level cancellation —
//! which is why it trails TKET/Paulihedral/PHOENIX at the logical level
//! (Fig. 5) while achieving the best routing-overhead multiple (Fig. 6).
//!
//! Our stand-in keeps both traits: support-locality ordering (good for the
//! router) with alternating tree roots (which deliberately breaks the
//! suffix sharing the cancellation pass would otherwise harvest).

use phoenix_circuit::{Circuit, Gate};
use phoenix_pauli::{Pauli, PauliString};

/// Compiles with support-locality ordering and alternating-root chains.
pub fn compile(n: usize, terms: &[(PauliString, f64)]) -> Circuit {
    // Order terms greedily: next term maximizes support overlap with the
    // current one (routing locality).
    let mut remaining: Vec<usize> = (0..terms.len()).collect();
    let mut order = Vec::with_capacity(terms.len());
    if !remaining.is_empty() {
        order.push(remaining.remove(0));
        while !remaining.is_empty() {
            let last_mask = terms[*order.last().expect("nonempty")].0.support_mask();
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, &i)| terms[i].0.support_mask().and_count(&last_mask))
                .expect("remaining nonempty");
            order.push(remaining.remove(pos));
        }
    }
    let mut out = Circuit::new(n);
    for &i in &order {
        let (p, c) = &terms[i];
        append_rotated_chain(&mut out, p, *c, false);
    }
    out
}

/// Chain synthesis with a selectable root end (alternating roots mimic the
/// mapping-shaped trees of Tetris).
fn append_rotated_chain(out: &mut Circuit, p: &PauliString, coeff: f64, reverse: bool) {
    let mut support = p.support();
    if reverse {
        support.reverse();
    }
    let theta = 2.0 * coeff;
    match support.len() {
        0 => {}
        1 => {
            let q = support[0];
            out.push(match p.get(q) {
                Pauli::X => Gate::Rx(q, theta),
                Pauli::Y => Gate::Ry(q, theta),
                Pauli::Z => Gate::Rz(q, theta),
                Pauli::I => unreachable!("support excludes identity"),
            });
        }
        _ => {
            for &q in &support {
                match p.get(q) {
                    Pauli::X => out.push(Gate::H(q)),
                    Pauli::Y => {
                        out.push(Gate::Sdg(q));
                        out.push(Gate::H(q));
                    }
                    _ => {}
                }
            }
            for w in support.windows(2) {
                out.push(Gate::Cnot(w[0], w[1]));
            }
            let root = *support.last().expect("nonempty support");
            out.push(Gate::Rz(root, theta));
            for w in support.windows(2).rev() {
                out.push(Gate::Cnot(w[0], w[1]));
            }
            for &q in &support {
                match p.get(q) {
                    Pauli::X => out.push(Gate::H(q)),
                    Pauli::Y => {
                        out.push(Gate::H(q));
                        out.push(Gate::S(q));
                    }
                    _ => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phoenix_circuit::peephole;

    fn terms(labels: &[&str]) -> Vec<(PauliString, f64)> {
        labels
            .iter()
            .enumerate()
            .map(|(i, l)| (l.parse().unwrap(), 0.05 * (i + 1) as f64))
            .collect()
    }

    #[test]
    fn compiles_every_term() {
        let t = terms(&["ZZZZ", "ZZZY", "XIXI"]);
        let c = compile(4, &t);
        let rots = c
            .gates()
            .iter()
            .filter(|g| matches!(g, Gate::Rz(..) | Gate::Rx(..) | Gate::Ry(..)))
            .count();
        assert_eq!(rots, 3);
    }

    #[test]
    fn weaker_at_logical_level_than_paulihedral_style() {
        // The alternating roots should leave at least as many CNOTs after
        // cancellation as Paulihedral-style blocking on a same-support run.
        let t = terms(&["ZZZZ", "ZZZY", "ZZYZ", "ZYZZ"]);
        let tetris = peephole::optimize(&compile(4, &t));
        let ph = peephole::optimize(&crate::paulihedral_style::compile(4, &t));
        assert!(
            tetris.counts().cnot >= ph.counts().cnot,
            "tetris {} vs paulihedral {}",
            tetris.counts().cnot,
            ph.counts().cnot
        );
    }
}
