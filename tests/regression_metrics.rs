//! Regression guards: pin the headline metrics into bands so future
//! changes to any pipeline stage surface as test failures rather than
//! silent quality regressions.
//!
//! Bands are deliberately loose (±20–30%) — they encode "the shape of the
//! paper's results", not exact numbers.

use phoenix::baselines::Baseline;
use phoenix::circuit::peephole;
use phoenix::core::PhoenixCompiler;
use phoenix::hamil::{qaoa, uccsd, Molecule};
use phoenix::sim::noise::ErrorModel;
use phoenix::topology::CouplingGraph;

#[test]
fn lih_frz_jw_logical_band() {
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    let naive = Baseline::Naive.compile_logical(h.num_qubits(), h.terms());
    assert_eq!(
        naive.counts().cnot,
        1376,
        "naive synthesis is deterministic"
    );
    let phoenix = PhoenixCompiler::default().compile_to_cnot(h.num_qubits(), h.terms());
    let ratio = phoenix.counts().cnot as f64 / naive.counts().cnot as f64;
    assert!(
        (0.15..0.40).contains(&ratio),
        "PHOENIX should retain ~25% of CNOTs, got {:.1}% ({} CNOTs)",
        100.0 * ratio,
        phoenix.counts().cnot
    );
}

#[test]
fn compiler_ranking_is_stable() {
    // The paper's ranking: PHOENIX < Paulihedral ≲ TKET < Tetris ≤ original.
    let h = uccsd::ansatz(Molecule::nh(), true, uccsd::Encoding::JordanWigner, 7);
    let n = h.num_qubits();
    let count = |b: Baseline| {
        peephole::optimize(&b.compile_logical(n, h.terms()))
            .counts()
            .cnot
    };
    let naive = Baseline::Naive.compile_logical(n, h.terms()).counts().cnot;
    let phoenix = PhoenixCompiler::default()
        .compile_to_cnot(n, h.terms())
        .counts()
        .cnot;
    let ph = count(Baseline::PaulihedralStyle);
    let tket = count(Baseline::TketStyle);
    let tetris = count(Baseline::TetrisStyle);
    assert!(phoenix < ph, "{phoenix} vs paulihedral {ph}");
    assert!(phoenix < tket, "{phoenix} vs tket {tket}");
    assert!(
        ph < tetris && tket < tetris,
        "tetris worst at logical level"
    );
    assert!(tetris <= naive);
}

#[test]
fn hardware_aware_band_on_heavy_hex() {
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::BravyiKitaev, 7);
    let device = CouplingGraph::manhattan65();
    let hw = PhoenixCompiler::default().compile_hardware_aware(h.num_qubits(), h.terms(), &device);
    let multiple = hw.routing_overhead();
    assert!(
        (1.2..5.0).contains(&multiple),
        "routing multiple {multiple:.2} out of band"
    );
}

#[test]
fn qaoa_depth_stays_near_optimal() {
    for (kind, degree) in [(qaoa::QaoaKind::Reg3, 3), (qaoa::QaoaKind::Rand4, 4)] {
        let h = qaoa::benchmark(kind, 16, 7);
        let out = PhoenixCompiler::default().compile(h.num_qubits(), h.terms());
        // Vizing: edge chromatic number ≤ degree+1; allow 2× slack.
        assert!(
            out.circuit.depth_2q() <= 2 * (degree + 1),
            "depth {} for degree-{degree} graph",
            out.circuit.depth_2q()
        );
    }
}

#[test]
fn predicted_success_improves_substantially() {
    // The NISQ bottom line: PHOENIX's compiled circuit has much higher
    // estimated success probability than the conventional one.
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    let n = h.num_qubits();
    let naive = Baseline::Naive.compile_logical(n, h.terms());
    let phoenix = PhoenixCompiler::default().compile_to_cnot(n, h.terms());
    let m = ErrorModel::ibm_like();
    let gain = m.success_probability(&phoenix) / m.success_probability(&naive);
    assert!(gain > 10.0, "success gain only {gain:.1}×");
}

#[test]
fn second_order_trotter_reduces_error() {
    use phoenix::hamil::models::heisenberg_chain;
    use phoenix::sim::{exact_evolution, infidelity, trotter_unitary};
    let h = heisenberg_chain(4, 0.4, 0.3, 0.5);
    let exact = exact_evolution(h.num_qubits(), h.terms());
    let e1 = infidelity(&exact, &trotter_unitary(h.num_qubits(), h.terms()));
    let s2 = h.second_order();
    let e2 = infidelity(&exact, &trotter_unitary(h.num_qubits(), s2.terms()));
    assert!(
        e2 < e1 / 2.0,
        "second order should win clearly: S1 {e1:.2e} vs S2 {e2:.2e}"
    );
}
