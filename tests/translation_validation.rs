//! Translation validation: differential + metamorphic equivalence over
//! every compile path, plus proof that an injected miscompilation is
//! caught with a minimized counterexample.
//!
//! This is the tier-1 slice of what `verifybench` runs at scale (200+
//! programs nightly); sizes here are kept small so the suite stays fast.

use phoenix_verify::gen::{shrink, Family, RandomProgramGen};
use phoenix_verify::metamorphic_failures;
use phoenix_verify::sabotage::{sabotage_failures, SabotageMode};
use phoenix_verify::{verify_program, VerifyConfig};

#[test]
fn differential_verification_over_random_programs() {
    let mut gen = RandomProgramGen::new(0xd1ff);
    let cfg = VerifyConfig::default();
    for i in 0..6 {
        let family = Family::ALL[i % Family::ALL.len()];
        let program = gen.program(family, 3 + i % 4, 5 + i);
        let failures = verify_program(&program, &cfg);
        assert!(
            failures.is_empty(),
            "{} n={} failed: {:?}",
            family.name(),
            program.num_qubits,
            failures
        );
    }
}

#[test]
fn metamorphic_properties_over_random_programs() {
    let mut gen = RandomProgramGen::new(0x3e7a);
    for (i, family) in Family::ALL.iter().enumerate() {
        let program = gen.program(*family, 4 + i % 2, 7);
        let failures = metamorphic_failures(&program, 0xabc ^ i as u64);
        assert!(failures.is_empty(), "{}: {:?}", family.name(), failures);
    }
}

#[test]
fn pass_boundary_verification_agrees_with_end_to_end() {
    // --verify recompiles with a BoundaryVerifier observer attached; on
    // correct inputs it must change nothing about the verdict.
    let mut gen = RandomProgramGen::new(0xb0b);
    let cfg = VerifyConfig {
        verify_passes: true,
        ..VerifyConfig::default()
    };
    let program = gen.program(Family::UccsdLike, 5, 8);
    let failures = verify_program(&program, &cfg);
    assert!(failures.is_empty(), "{:?}", failures);
}

#[test]
fn injected_miscompilation_is_caught_and_minimized() {
    let mut gen = RandomProgramGen::new(0xbad);
    for mode in [SabotageMode::FlipRotationSign, SabotageMode::ExtraGate] {
        let program = gen.program(Family::Random, 5, 9);
        let failures = sabotage_failures(&program, mode);
        assert!(!failures.is_empty(), "{mode:?} went undetected");
        assert_eq!(failures[0].check, "exact-unitary");

        let minimized = shrink(&program, |cand| !sabotage_failures(cand, mode).is_empty());
        assert!(
            !sabotage_failures(&minimized, mode).is_empty(),
            "minimized counterexample must still fail"
        );
        // Both corruptions touch a single gate, so a single term suffices
        // to reproduce them — the shrinker should find that.
        assert_eq!(
            minimized.terms.len(),
            1,
            "expected a 1-term counterexample, got {:?}",
            minimized.terms
        );
    }
}
