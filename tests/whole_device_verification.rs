//! Whole-device verification: routed circuits on the 65-qubit heavy-hex
//! device are checked against their logical counterparts with the
//! stabilizer simulator — a scale far beyond state-vector reach.

use phoenix::circuit::{Circuit, Gate};
use phoenix::mathkit::Xoshiro256;
use phoenix::pauli::{Pauli, PauliString};
use phoenix::router::{route, search_layout, RouterOptions};
use phoenix::sim::StabilizerState;
use phoenix::topology::CouplingGraph;
use phoenix_verify::check_routed_equivalence;
use phoenix_verify::gen::{Family, RandomProgramGen};

fn random_clifford_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let a = rng.next_below(n);
        let b = (a + 1 + rng.next_below(n - 1)) % n;
        match rng.next_below(4) {
            0 => c.push(Gate::H(a)),
            1 => c.push(Gate::S(a)),
            2 => c.push(Gate::Cnot(a, b)),
            _ => c.push(Gate::Cnot(b, a)),
        }
    }
    c
}

#[test]
fn routed_clifford_circuits_match_logical_state_on_heavy_hex() {
    let device = CouplingGraph::manhattan65();
    for seed in [3u64, 17, 99] {
        let n_logical = 20;
        let logical = random_clifford_circuit(n_logical, 120, seed);

        let opts = RouterOptions::default();
        let layout = search_layout(&logical, &device, &opts, 2);
        let routed = route(&logical, &device, layout.clone(), &opts);

        // Logical reference state.
        let ref_state = StabilizerState::zero(n_logical)
            .evolved(&logical)
            .expect("clifford circuit");
        // Physical state on the whole device.
        let phys_state = StabilizerState::zero(device.num_qubits())
            .evolved(&routed.circuit)
            .expect("routed circuit is clifford");

        // Every logical Pauli observable embeds through the *final* layout.
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..25 {
            let mut logical_obs = PauliString::identity(n_logical);
            for q in 0..n_logical {
                logical_obs.set(
                    q,
                    [Pauli::I, Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][rng.next_below(5)],
                );
            }
            let placement: Vec<usize> = (0..n_logical)
                .map(|q| routed.final_layout.phys(q).expect("mapped"))
                .collect();
            let phys_obs = logical_obs.embed(device.num_qubits(), &placement);
            assert_eq!(
                ref_state.expectation(&logical_obs),
                phys_state.expectation(&phys_obs),
                "seed {seed}, observable {logical_obs}"
            );
        }
    }
}

#[test]
fn bridge_routing_matches_logical_state() {
    let device = CouplingGraph::manhattan65();
    let logical = random_clifford_circuit(12, 60, 5);
    let opts = RouterOptions {
        use_bridge: true,
        ..RouterOptions::default()
    };
    let layout = search_layout(&logical, &device, &opts, 2);
    let routed = route(&logical, &device, layout, &opts);
    let ref_state = StabilizerState::zero(12)
        .evolved(&logical)
        .expect("clifford");
    let phys_state = StabilizerState::zero(65)
        .evolved(&routed.circuit)
        .expect("clifford");
    let mut rng = Xoshiro256::seed_from_u64(1);
    for _ in 0..20 {
        let mut obs = PauliString::identity(12);
        for q in 0..12 {
            obs.set(
                q,
                [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][rng.next_below(4)],
            );
        }
        let placement: Vec<usize> = (0..12)
            .map(|q| routed.final_layout.phys(q).expect("mapped"))
            .collect();
        let phys_obs = obs.embed(65, &placement);
        assert_eq!(
            ref_state.expectation(&obs),
            phys_state.expectation(&phys_obs),
            "observable {obs}"
        );
    }
}

/// The tests above start from |0…0⟩, which every qubit permutation fixes —
/// so they cannot tell a correct initial layout from a wrong one. Here a
/// nontrivial stabilizer input is prepared at the *initial* layout before
/// the routed circuit runs, so the routed/logical comparison fails for any
/// placement other than `routed.initial_layout`.
#[test]
fn routed_circuit_respects_the_initial_layout_on_heavy_hex() {
    let device = CouplingGraph::manhattan65();
    let n_logical = 16;
    for seed in [11u64, 42] {
        let logical = random_clifford_circuit(n_logical, 100, seed);
        let prep = random_clifford_circuit(n_logical, 40, seed ^ 0xfeed);

        let opts = RouterOptions::default();
        let layout = search_layout(&logical, &device, &opts, 2);
        let routed = route(&logical, &device, layout, &opts);

        let initial: Vec<usize> = (0..n_logical)
            .map(|q| routed.initial_layout.phys(q).expect("mapped"))
            .collect();
        let final_placement: Vec<usize> = (0..n_logical)
            .map(|q| routed.final_layout.phys(q).expect("mapped"))
            .collect();

        // Logical reference: prep then circuit, all at logical indices.
        let ref_state = StabilizerState::zero(n_logical)
            .evolved(&prep)
            .expect("clifford")
            .evolved(&logical)
            .expect("clifford");
        // Physical run: prep embedded at the initial layout, then the
        // routed circuit on the whole device.
        let phys_prep = prep.map_qubits(device.num_qubits(), |q| initial[q]);
        let phys_state = StabilizerState::zero(device.num_qubits())
            .evolved(&phys_prep)
            .expect("clifford")
            .evolved(&routed.circuit)
            .expect("clifford");

        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0x1a10);
        for _ in 0..25 {
            let mut obs = PauliString::identity(n_logical);
            for q in 0..n_logical {
                obs.set(
                    q,
                    [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][rng.next_below(4)],
                );
            }
            let phys_obs = obs.embed(device.num_qubits(), &final_placement);
            assert_eq!(
                ref_state.expectation(&obs),
                phys_state.expectation(&phys_obs),
                "seed {seed}, observable {obs}"
            );
        }
    }
}

/// Dense permutation-aware equivalence on a small device: the routed
/// unitary times the inverse of the logical unitary (embedded at the
/// initial layout) must decode to exactly the basis permutation that maps
/// the initial layout to the final layout. Covers PHOENIX's hardware-aware
/// path and every baseline through the shared hardware backend.
#[test]
fn routed_unitaries_decode_to_the_layout_permutation() {
    use phoenix::baselines::Baseline;
    use phoenix::core::{try_run_hardware_backend, PhoenixCompiler};

    let device = CouplingGraph::line(5);
    let mut gen = RandomProgramGen::new(0x10c4);
    for family in Family::ALL {
        let program = gen.program(family, 5, 8);
        let n = program.num_qubits;

        let hw = PhoenixCompiler::default()
            .try_compile_hardware_aware(n, &program.terms, &device)
            .expect("hardware compile");
        let outcome = check_routed_equivalence(
            &hw.circuit,
            &hw.logical,
            &hw.initial_layout,
            &hw.final_layout,
        );
        assert!(!outcome.is_fail(), "PHOENIX {}: {outcome:?}", family.name());

        for b in [Baseline::Naive, Baseline::TetrisStyle] {
            let logical = b.compile_logical(n, &program.terms);
            let hw = try_run_hardware_backend(&logical, &device, &RouterOptions::default(), 3)
                .expect("hardware backend");
            let outcome = check_routed_equivalence(
                &hw.circuit,
                &hw.logical,
                &hw.initial_layout,
                &hw.final_layout,
            );
            assert!(
                !outcome.is_fail(),
                "{} {}: {outcome:?}",
                Baseline::name(b),
                family.name()
            );
        }
    }
}
