//! Whole-device verification: routed circuits on the 65-qubit heavy-hex
//! device are checked against their logical counterparts with the
//! stabilizer simulator — a scale far beyond state-vector reach.

use phoenix::circuit::{Circuit, Gate};
use phoenix::mathkit::Xoshiro256;
use phoenix::pauli::{Pauli, PauliString};
use phoenix::router::{route, search_layout, RouterOptions};
use phoenix::sim::StabilizerState;
use phoenix::topology::CouplingGraph;

fn random_clifford_circuit(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let a = rng.next_below(n);
        let b = (a + 1 + rng.next_below(n - 1)) % n;
        match rng.next_below(4) {
            0 => c.push(Gate::H(a)),
            1 => c.push(Gate::S(a)),
            2 => c.push(Gate::Cnot(a, b)),
            _ => c.push(Gate::Cnot(b, a)),
        }
    }
    c
}

#[test]
fn routed_clifford_circuits_match_logical_state_on_heavy_hex() {
    let device = CouplingGraph::manhattan65();
    for seed in [3u64, 17, 99] {
        let n_logical = 20;
        let logical = random_clifford_circuit(n_logical, 120, seed);

        let opts = RouterOptions::default();
        let layout = search_layout(&logical, &device, &opts, 2);
        let routed = route(&logical, &device, layout.clone(), &opts);

        // Logical reference state.
        let ref_state = StabilizerState::zero(n_logical)
            .evolved(&logical)
            .expect("clifford circuit");
        // Physical state on the whole device.
        let phys_state = StabilizerState::zero(device.num_qubits())
            .evolved(&routed.circuit)
            .expect("routed circuit is clifford");

        // Every logical Pauli observable embeds through the *final* layout.
        let mut rng = Xoshiro256::seed_from_u64(seed ^ 0xabcd);
        for _ in 0..25 {
            let mut logical_obs = PauliString::identity(n_logical);
            for q in 0..n_logical {
                logical_obs.set(
                    q,
                    [Pauli::I, Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][rng.next_below(5)],
                );
            }
            let placement: Vec<usize> = (0..n_logical)
                .map(|q| routed.final_layout.phys(q).expect("mapped"))
                .collect();
            let phys_obs = logical_obs.embed(device.num_qubits(), &placement);
            assert_eq!(
                ref_state.expectation(&logical_obs),
                phys_state.expectation(&phys_obs),
                "seed {seed}, observable {logical_obs}"
            );
        }
    }
}

#[test]
fn bridge_routing_matches_logical_state() {
    let device = CouplingGraph::manhattan65();
    let logical = random_clifford_circuit(12, 60, 5);
    let opts = RouterOptions {
        use_bridge: true,
        ..RouterOptions::default()
    };
    let layout = search_layout(&logical, &device, &opts, 2);
    let routed = route(&logical, &device, layout, &opts);
    let ref_state = StabilizerState::zero(12)
        .evolved(&logical)
        .expect("clifford");
    let phys_state = StabilizerState::zero(65)
        .evolved(&routed.circuit)
        .expect("clifford");
    let mut rng = Xoshiro256::seed_from_u64(1);
    for _ in 0..20 {
        let mut obs = PauliString::identity(12);
        for q in 0..12 {
            obs.set(
                q,
                [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][rng.next_below(4)],
            );
        }
        let placement: Vec<usize> = (0..12)
            .map(|q| routed.final_layout.phys(q).expect("mapped"))
            .collect();
        let phys_obs = obs.embed(65, &placement);
        assert_eq!(
            ref_state.expectation(&obs),
            phys_state.expectation(&phys_obs),
            "observable {obs}"
        );
    }
}
