//! Hardware-aware integration: every compiler's mapped output must respect
//! the coupling graph, and the routing bookkeeping must be consistent.

use phoenix::baselines::{hardware_aware, Baseline};
use phoenix::circuit::Circuit;
use phoenix::core::PhoenixCompiler;
use phoenix::hamil::{qaoa, uccsd, Molecule};
use phoenix::topology::CouplingGraph;

fn assert_respects_coupling(c: &Circuit, device: &CouplingGraph, label: &str) {
    for g in c.gates() {
        if let (a, Some(b)) = g.qubits() {
            assert!(
                device.contains_edge(a, b),
                "{label}: gate {g} on non-coupled pair"
            );
        }
    }
}

#[test]
fn phoenix_mapped_output_respects_heavy_hex() {
    let device = CouplingGraph::manhattan65();
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::JordanWigner, 7);
    let hw = PhoenixCompiler::default().compile_hardware_aware(h.num_qubits(), h.terms(), &device);
    assert_respects_coupling(&hw.circuit, &device, "PHOENIX");
    assert!(hw.routing_overhead() >= 1.0);
    assert!(hw.circuit.counts().cnot >= hw.logical.counts().cnot);
}

#[test]
fn baselines_mapped_output_respects_heavy_hex() {
    let device = CouplingGraph::manhattan65();
    let h = qaoa::benchmark(qaoa::QaoaKind::Rand4, 16, 5);
    for b in [
        Baseline::PaulihedralStyle,
        Baseline::TetrisStyle,
        Baseline::TwoQanStyle,
    ] {
        let hw = hardware_aware(&b.compile_logical(h.num_qubits(), h.terms()), &device);
        assert_respects_coupling(&hw.circuit, &device, b.name());
    }
}

#[test]
fn all_to_all_needs_no_routing() {
    let device = CouplingGraph::all_to_all(10);
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::BravyiKitaev, 7);
    let hw = PhoenixCompiler::default().compile_hardware_aware(h.num_qubits(), h.terms(), &device);
    assert_eq!(hw.num_swaps, 0);
}

#[test]
fn smaller_devices_also_work() {
    // Route a 10-qubit program onto a 3×4 grid and a 12-qubit line.
    let h = uccsd::ansatz(Molecule::nh(), true, uccsd::Encoding::JordanWigner, 7);
    for device in [CouplingGraph::grid(3, 4), CouplingGraph::line(12)] {
        let hw =
            PhoenixCompiler::default().compile_hardware_aware(h.num_qubits(), h.terms(), &device);
        assert_respects_coupling(&hw.circuit, &device, "grid/line");
        assert!(hw.num_swaps > 0, "sparse devices need swaps");
    }
}
