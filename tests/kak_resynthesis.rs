//! KAK resynthesis preserves semantics and finds gate-count floors.

use phoenix::circuit::{kak, peephole, rebase, Circuit, Gate};
use phoenix::core::PhoenixCompiler;
use phoenix::hamil::models;
use phoenix::mathkit::Xoshiro256;
use phoenix::sim::{circuit_unitary, infidelity};

fn random_program(n: usize, gates: usize, seed: u64) -> Circuit {
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for _ in 0..gates {
        let a = rng.next_below(n);
        let b = (a + 1 + rng.next_below(n - 1)) % n;
        match rng.next_below(4) {
            0 => c.push(Gate::Cnot(a, b)),
            1 => c.push(Gate::Rz(a, rng.next_range_f64(-2.0, 2.0))),
            2 => c.push(Gate::Ry(a, rng.next_range_f64(-2.0, 2.0))),
            _ => c.push(Gate::H(a)),
        }
    }
    c
}

#[test]
fn resynthesis_preserves_unitary_on_random_programs() {
    for seed in 0..6 {
        let c = random_program(4, 40, seed);
        let fused = rebase::to_su4(&c);
        let resynth = kak::resynthesize(&fused);
        let u = circuit_unitary(&c);
        let v = circuit_unitary(&resynth);
        assert!(
            infidelity(&u, &v) < 1e-8,
            "seed {seed}: infid {}",
            infidelity(&u, &v)
        );
    }
}

#[test]
fn resynthesis_caps_same_pair_runs_at_three_rotations() {
    // A long same-pair run is one SU(4) block: resynthesis must collapse it
    // to ≤ 3 two-qubit rotations regardless of its original length.
    let mut c = Circuit::new(2);
    let mut rng = Xoshiro256::seed_from_u64(3);
    for _ in 0..15 {
        c.push(Gate::Cnot(0, 1));
        c.push(Gate::Ry(0, rng.next_range_f64(-1.0, 1.0)));
        c.push(Gate::Rz(1, rng.next_range_f64(-1.0, 1.0)));
    }
    let resynth = kak::resynthesize(&rebase::to_su4(&c));
    let lowered = peephole::optimize(&resynth);
    assert!(
        lowered.counts().cnot <= 6,
        "≤3 rotations → ≤6 CNOTs, got {}",
        lowered.counts().cnot
    );
    let u = circuit_unitary(&c);
    let v = circuit_unitary(&lowered);
    assert!(infidelity(&u, &v) < 1e-8);
}

#[test]
fn kak_pipeline_preserves_compiled_program_semantics() {
    let h = models::heisenberg_chain(4, 0.4, -0.3, 0.6);
    let out = PhoenixCompiler::default().compile(h.num_qubits(), h.terms());
    let su4 = rebase::to_su4(&out.circuit);
    let resynth = kak::resynthesize(&su4);
    let u = circuit_unitary(&out.circuit);
    let v = circuit_unitary(&resynth);
    assert!(infidelity(&u, &v) < 1e-8);
    // The resynthesized SU(4) stream lowers to no more CNOTs than before.
    let before = peephole::optimize(&su4).counts().cnot;
    let after = peephole::optimize(&resynth).counts().cnot;
    assert!(after <= before, "{after} vs {before}");
}
