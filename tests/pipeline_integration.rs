//! Cross-crate integration: generators → compilers → simulator.

use phoenix::baselines::Baseline;
use phoenix::circuit::peephole;
use phoenix::core::PhoenixCompiler;
use phoenix::hamil::{models, qaoa, uccsd, Molecule};
use phoenix::sim::{circuit_unitary, infidelity, trotter_unitary};

/// PHOENIX must beat the conventional circuit on every UCCSD benchmark.
#[test]
fn phoenix_beats_original_on_uccsd_suite() {
    for h in uccsd::table1_suite(7) {
        // Keep debug-mode runtime in check: only the small benchmarks.
        if h.len() > 400 {
            continue;
        }
        let naive = Baseline::Naive.compile_logical(h.num_qubits(), h.terms());
        let phoenix = PhoenixCompiler::default().compile_to_cnot(h.num_qubits(), h.terms());
        assert!(
            phoenix.counts().cnot * 2 < naive.counts().cnot,
            "{}: {} vs {}",
            h.name(),
            phoenix.counts().cnot,
            naive.counts().cnot
        );
        assert!(phoenix.depth_2q() < naive.depth_2q(), "{}", h.name());
    }
}

/// Every compiler's output on a small program implements a valid Trotter
/// product of the input (identical term multiset ⇒ same first-order error
/// class); PHOENIX's is checked exactly against its reported order.
#[test]
fn compiled_circuits_are_unitarily_faithful() {
    let h = models::heisenberg_chain(4, 0.3, -0.2, 0.5);
    let out = PhoenixCompiler::default().compile(h.num_qubits(), h.terms());
    let want = trotter_unitary(h.num_qubits(), &out.term_order);
    assert!(infidelity(&want, &circuit_unitary(&out.circuit)) < 1e-10);

    // Baselines preserve the *input order within commuting freedom*; their
    // circuits must be unitary and act on the right register.
    for b in [
        Baseline::Naive,
        Baseline::TketStyle,
        Baseline::PaulihedralStyle,
        Baseline::TetrisStyle,
    ] {
        let c = peephole::optimize(&b.compile_logical(h.num_qubits(), h.terms()));
        let u = circuit_unitary(&c);
        assert!(u.is_unitary(1e-10), "{}", b.name());
    }
}

/// The naive baseline is order-exact: its unitary equals the input-order
/// Trotter product.
#[test]
fn naive_baseline_is_order_exact() {
    let h = models::tfim_chain(5, 0.7, 0.3);
    let c = Baseline::Naive.compile_logical(h.num_qubits(), h.terms());
    let u = circuit_unitary(&c);
    let want = trotter_unitary(h.num_qubits(), h.terms());
    assert!(infidelity(&u, &want) < 1e-10);
}

/// QAOA programs compile into pure 2Q-rotation circuits with near-optimal
/// logical depth.
#[test]
fn qaoa_compiles_depth_efficiently() {
    let h = qaoa::benchmark(qaoa::QaoaKind::Reg3, 16, 3);
    let out = PhoenixCompiler::default().compile(h.num_qubits(), h.terms());
    assert_eq!(out.circuit.counts().clifford2, 0, "no conjugations needed");
    assert_eq!(out.circuit.counts().pauli_rot2, h.len());
    // 3-regular graphs are 3- or 4-edge-colorable; each color layer costs
    // one 2Q layer. Allow modest slack over the optimum.
    assert!(
        out.circuit.depth_2q() <= 8,
        "depth {}",
        out.circuit.depth_2q()
    );
}

/// The SU(4) pipeline emits strictly fewer 2Q instructions than CNOTs.
#[test]
fn su4_isa_reduces_instruction_count() {
    let h = uccsd::ansatz(Molecule::lih(), true, uccsd::Encoding::BravyiKitaev, 7);
    let compiler = PhoenixCompiler::default();
    let cnot = compiler.compile_to_cnot(h.num_qubits(), h.terms());
    let su4 = compiler.compile_to_su4(h.num_qubits(), h.terms());
    assert!(su4.counts().su4 < cnot.counts().cnot);
    assert!(su4.depth_2q() <= cnot.depth_2q());
}

/// Compilation is deterministic end to end.
#[test]
fn compilation_is_deterministic() {
    let h = uccsd::ansatz(Molecule::nh(), true, uccsd::Encoding::JordanWigner, 9);
    let a = PhoenixCompiler::default().compile(h.num_qubits(), h.terms());
    let b = PhoenixCompiler::default().compile(h.num_qubits(), h.terms());
    assert_eq!(a.circuit, b.circuit);
    assert_eq!(a.term_order, b.term_order);
}
