//! Property-based tests on the core invariants, spanning crates.

use phoenix::circuit::{peephole, rebase, synthesis, Circuit, Gate};
use phoenix::core::PhoenixCompiler;
use phoenix::pauli::{Bsf, Clifford2Q, Pauli, PauliString, CLIFFORD2Q_GENERATORS};
use phoenix::sim::{circuit_unitary, infidelity, trotter_unitary};
use proptest::prelude::*;

/// Strategy: a non-identity Pauli string over `n` qubits.
fn pauli_string(n: usize) -> impl Strategy<Value = PauliString> {
    proptest::collection::vec(0usize..4, n).prop_filter_map("identity string", move |ps| {
        let mut p = PauliString::identity(n);
        for (q, &k) in ps.iter().enumerate() {
            p.set(q, [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z][k]);
        }
        (!p.is_identity()).then_some(p)
    })
}

fn small_program(n: usize, max_terms: usize) -> impl Strategy<Value = Vec<(PauliString, f64)>> {
    proptest::collection::vec((pauli_string(n), -0.5f64..0.5), 1..=max_terms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled circuit always equals the exact Trotter product of the
    /// reported term order, for any 4-qubit program.
    #[test]
    fn phoenix_is_unitarily_exact(terms in small_program(4, 6)) {
        let out = PhoenixCompiler::default().compile(4, &terms);
        let want = trotter_unitary(4, &out.term_order);
        let got = circuit_unitary(&out.circuit);
        prop_assert!(infidelity(&want, &got) < 1e-9);
    }

    /// Peephole optimization never changes the unitary (up to phase) and
    /// never increases the CNOT count.
    #[test]
    fn peephole_preserves_unitary(terms in small_program(4, 5)) {
        let raw = synthesis::naive_circuit(4, &terms);
        let opt = peephole::optimize(&raw);
        prop_assert!(opt.counts().cnot <= raw.counts().cnot);
        let u = circuit_unitary(&raw);
        let v = circuit_unitary(&opt);
        prop_assert!(infidelity(&u, &v) < 1e-9);
    }

    /// SU(4) rebase preserves the unitary exactly and never increases 2Q
    /// depth.
    #[test]
    fn rebase_preserves_unitary(terms in small_program(4, 5)) {
        let hl = PhoenixCompiler::default().compile(4, &terms).circuit;
        let su4 = rebase::to_su4(&hl);
        prop_assert!(su4.depth_2q() <= hl.depth_2q());
        let u = circuit_unitary(&hl);
        let v = circuit_unitary(&su4);
        prop_assert!(infidelity(&u, &v) < 1e-9);
    }

    /// Clifford conjugation on the BSF preserves weights' parity structure:
    /// commutation relations between rows are invariant.
    #[test]
    fn bsf_conjugation_preserves_commutation(
        terms in small_program(5, 4),
        kind_idx in 0usize..6,
        a in 0usize..5,
        b in 0usize..5,
    ) {
        prop_assume!(a != b);
        let bsf = Bsf::from_terms(5, terms.clone()).unwrap();
        let conj = bsf.conjugated(Clifford2Q::new(CLIFFORD2Q_GENERATORS[kind_idx], a, b));
        let t0 = bsf.to_terms();
        let t1 = conj.to_terms();
        for i in 0..t0.len() {
            for j in 0..t0.len() {
                prop_assert_eq!(
                    t0[i].0.commutes(&t0[j].0),
                    t1[i].0.commutes(&t1[j].0)
                );
            }
        }
        // Coefficient magnitudes are preserved (only signs may flip).
        for (x, y) in t0.iter().zip(&t1) {
            prop_assert!((x.1.abs() - y.1.abs()).abs() < 1e-15);
        }
    }

    /// Routing onto a line preserves per-qubit logical gate sequences
    /// (checked indirectly: unitary equality after un-mapping is covered in
    /// the router's unit tests; here we check structural sanity).
    #[test]
    fn routed_circuits_only_use_device_edges(terms in small_program(4, 5)) {
        let device = phoenix::topology::CouplingGraph::line(4);
        let hw = PhoenixCompiler::default().compile_hardware_aware(4, &terms, &device);
        for g in hw.circuit.gates() {
            if let (x, Some(y)) = g.qubits() {
                prop_assert!(device.contains_edge(x, y));
            }
        }
    }

    /// Gate-level identity: lowering any high-level gate is unitary-exact.
    #[test]
    fn gate_lowering_is_exact(
        kind_idx in 0usize..6,
        pa_idx in 0usize..3,
        pb_idx in 0usize..3,
        theta in -3.0f64..3.0,
    ) {
        let mut c = Circuit::new(2);
        c.push(Gate::Clifford2(Clifford2Q::new(
            CLIFFORD2Q_GENERATORS[kind_idx], 0, 1,
        )));
        c.push(Gate::PauliRot2 {
            a: 0,
            b: 1,
            pa: Pauli::XYZ[pa_idx],
            pb: Pauli::XYZ[pb_idx],
            theta,
        });
        let u = circuit_unitary(&c);
        let v = circuit_unitary(&c.lower_to_cnot());
        prop_assert!(infidelity(&u, &v) < 1e-10);
    }
}
